"""Worker-death faults: the crash-propagation contract.

A shard worker can die at the worst possible moments — mid
commit-window, mid batched flush, or just SIGKILLed between commands.
The contract (see ``docs/architecture.md``): the supervisor respawns
the dead worker and replays its command journal, so every journaled
command — including the one in flight — has fully executed on the
healed engine; the interrupted facade call raises
:class:`WorkerCrashed`; the driver treats that as a crash signal
(``crash()`` + ``recover()``) and resolves any in-doubt commit against
the recovered winner set.  Cross-shard atomicity holds throughout:
journal-at-send makes a scatter command all-or-nothing, so no shard can
commit a transaction the others never saw.
"""

import pytest

from repro.db import (WorkerCrashed, WorkerShardedDatabase, preset,
                      verify_database)
from repro.storage.page import make_page

OVERRIDES = dict(group_size=5, num_groups=12, buffer_capacity=16)


def build(name="page-noforce-rda", shards=2, flush_horizon=2):
    return WorkerShardedDatabase(preset(name, **OVERRIDES), shards=shards,
                                 flush_horizon=flush_horizon)


def test_sigkill_idle_worker_raises_then_heals():
    """A SIGKILLed worker surfaces as WorkerCrashed on the next call;
    after the crash-contract dance, nothing committed is lost."""
    with build() as db:
        t = db.begin()
        db.write_page(t, 0, make_page(b"a"))
        db.write_page(t, 1, make_page(b"b"))
        db.commit(t)
        db.supervisor.kill(1)
        with pytest.raises(WorkerCrashed) as excinfo:
            db.begin()
        assert excinfo.value.shard == 1
        db.crash()
        recovery = db.recover()
        assert t in recovery["winners"]
        assert db.committed_view(0) == make_page(b"a")
        assert db.committed_view(1) == make_page(b"b")
        assert verify_database(db) == []
        assert db.worker_deaths == 1


@pytest.mark.parametrize("when", ["before_commit", "after_commit"])
def test_worker_death_mid_commit_window(when):
    """Death inside the commit window, before or after the shard commit
    lands.  Either way journal replay makes the commit execute on the
    healed worker, so the in-doubt transaction resolves to a winner on
    *every* shard — RDA commit processing destroys undo, so a torn
    cross-shard commit would be unrecoverable; the journal makes it
    impossible instead."""
    with build() as db:
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.write_page(t, 1, make_page(b"y"))
        db.supervisor.arm_death(1, when)
        with pytest.raises(WorkerCrashed):
            db.commit(t)
        db.crash()
        recovery = db.recover()
        assert t in recovery["winners"]
        assert t not in recovery["losers"]
        assert db.committed_view(0) == make_page(b"x")
        assert db.committed_view(1) == make_page(b"y")
        assert verify_database(db) == []
        assert db.worker_deaths == 1


def test_worker_death_mid_flush_drain_finishes_the_job():
    """Death halfway through a batched group-commit flush: one pending
    log forced, the rest torn.  The healed worker's journal replay
    completes the flush (the PR-8 drain contract: acknowledged commits
    stay durable), so both horizon-batched transactions survive."""
    with build(flush_horizon=2) as db:
        t1 = db.begin()
        db.write_page(t1, 0, make_page(b"p"))
        db.write_page(t1, 1, make_page(b"q"))
        db.commit(t1)                       # under the horizon: no flush
        db.supervisor.arm_death(0, "mid_flush")
        t2 = db.begin()
        db.write_page(t2, 2, make_page(b"r"))
        db.write_page(t2, 3, make_page(b"s"))
        with pytest.raises(WorkerCrashed):
            db.commit(t2)                   # horizon flush hits the bomb
        db.crash()
        recovery = db.recover()
        assert t1 in recovery["winners"]
        assert t2 in recovery["winners"]
        for page, payload in [(0, b"p"), (1, b"q"), (2, b"r"), (3, b"s")]:
            assert db.committed_view(page) == make_page(payload)
        assert verify_database(db) == []
        assert db.worker_deaths == 1


def test_scatter_death_is_all_or_nothing():
    """A command that kills one worker still lands on every shard: the
    journal was appended before the send, so the healed worker replays
    it.  No cross-shard divergence is possible."""
    with build() as db:
        db.supervisor.arm_death(0, "next_command")
        with pytest.raises(WorkerCrashed):
            db.begin()                      # scatter: dies on worker 0
        # the begin still registered everywhere (replay on 0, live on 1)
        t = 1
        db.write_page(t, 0, make_page(b"k"))
        db.write_page(t, 1, make_page(b"l"))
        db.commit(t)
        assert db.committed_view(0) == make_page(b"k")
        assert verify_database(db) == []


def test_repeated_kills_accumulate_and_stay_consistent():
    """Several kills across a run: the journal replays the whole life
    of the shard each time, and the engine keeps converging."""
    with build() as db:
        committed = {}
        for round_no in range(3):
            t = db.begin()
            page = round_no * 2
            db.write_page(t, page, make_page(bytes([65 + round_no])))
            db.write_page(t, page + 1, make_page(bytes([97 + round_no])))
            db.commit(t)
            committed[page] = make_page(bytes([65 + round_no]))
            committed[page + 1] = make_page(bytes([97 + round_no]))
            db.supervisor.kill(round_no % 2)
            with pytest.raises(WorkerCrashed):
                db.begin()
            db.crash()
            db.recover()
        assert db.worker_deaths == 3
        for page, payload in committed.items():
            assert db.committed_view(page) == payload
        assert verify_database(db) == []


def test_fault_hook_rejected_in_worker_mode():
    """Recovery fault hooks are closures over test state — they cannot
    cross the pipe; the facade must say so instead of mis-executing."""
    from repro.errors import ModelError
    with build() as db:
        t = db.begin()
        db.write_page(t, 0, make_page(b"z"))
        db.commit(t)
        db.crash()
        with pytest.raises(ModelError):
            db.recover(fault_hook=lambda *a: None)
        db.recover()
        assert verify_database(db) == []
