"""Tests for the queueing extension."""

import pytest

from repro.errors import ModelError
from repro.model.page_logging import force_toc
from repro.model.params import high_update
from repro.model.queueing import (max_txn_rate, response_time_ms,
                                  saturation_gain, throughput_latency_curve,
                                  txn_response_ms, utilization)


class TestPrimitives:
    def test_utilization_linear_in_rate(self):
        low = utilization(10, c_E=50, num_disks=10, service_ms=20)
        high = utilization(20, c_E=50, num_disks=10, service_ms=20)
        assert high == pytest.approx(2 * low)

    def test_utilization_example(self):
        # 10 txn/s * 50 transfers = 500/s over 10 disks = 50/s/disk;
        # at 20 ms each that is exactly utilization 1.0
        assert utilization(10, 50, 10, 20) == pytest.approx(1.0)

    def test_response_grows_toward_saturation(self):
        assert response_time_ms(0.0, 20) == 20
        assert response_time_ms(0.5, 20) == 40
        assert response_time_ms(0.9, 20) == pytest.approx(200)

    def test_response_rejects_saturation(self):
        with pytest.raises(ModelError):
            response_time_ms(1.0, 20)

    def test_max_rate_consistent_with_utilization(self):
        rate = max_txn_rate(c_E=50, num_disks=10, service_ms=20)
        assert utilization(rate, 50, 10, 20) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            utilization(-1, 50, 10, 20)
        with pytest.raises(ModelError):
            max_txn_rate(0, 10, 20)
        with pytest.raises(ModelError):
            throughput_latency_curve(50, 10, 20, points=1)


class TestCurves:
    def test_curve_monotone(self):
        curve = throughput_latency_curve(c_E=60, num_disks=10, service_ms=15)
        rates = [r for r, _ in curve]
        latencies = [l for _, l in curve]
        assert rates == sorted(rates)
        assert latencies == sorted(latencies)

    def test_txn_response_scales_with_cost(self):
        cheap = txn_response_ms(5, c_E=40, num_disks=10, service_ms=15)
        pricey = txn_response_ms(5, c_E=80, num_disks=10, service_ms=15)
        assert pricey > 2 * cheap      # more transfers AND higher rho


class TestRDAConnection:
    def test_saturation_gain_matches_throughput_gain(self):
        """rate_max ∝ 1/c_E, so the queueing gain tracks the paper's
        throughput gain (up to the small crash-recovery term c_s the
        interval model also subtracts)."""
        params = high_update(C=0.9)
        base = force_toc(params, rda=False)
        rda = force_toc(params, rda=True)
        gain = saturation_gain(base.c_E, rda.c_E)
        assert gain == pytest.approx(
            rda.throughput / base.throughput - 1.0, rel=0.02)
        assert gain == pytest.approx(0.43, abs=0.02)

    def test_rda_latency_lower_at_same_rate(self):
        params = high_update(C=0.9)
        base = force_toc(params, rda=False).c_E
        rda = force_toc(params, rda=True).c_E
        rate = max_txn_rate(base, 11, 18) * 0.8
        assert txn_response_ms(rate, rda, 11, 18) < \
            txn_response_ms(rate, base, 11, 18)

    def test_saturation_gain_validation(self):
        with pytest.raises(ModelError):
            saturation_gain(0, 10)
