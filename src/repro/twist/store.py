"""The TWIST twin-page store.

Every logical page owns two physical slots on the simulated disks (on
different disks, so a single media failure loses at most one twin).
Writes by a transaction go to the twin *not* holding the current
version, stamped with ``(timestamp, txn_id)``; the current-twin choice
lives in a main-memory bit map, exactly like the parity twins of RDA:

* **commit** — flip the bits for the transaction's pages (no I/O);
* **abort** — leave the bits alone (no I/O at all: the old twin never
  moved); re-stamp the written twins INVALID lazily on next write;
* **crash** — scan the twin headers against the log's commit set to
  rebuild the bit map (like ``Current_Parity``, Figure 7 of the paper).

A page may carry uncommitted data from at most one transaction at a
time (the second twin is the committed fallback); the store enforces
this, mirroring the dirty-group rule of RDA.

Costs: read = 1 transfer, write = 1 transfer (*no* read-modify-write:
there is no parity), undo = 0 transfers.  Storage = 2x.
"""

from __future__ import annotations

from ..errors import ParityGroupError, RecoveryError
from ..storage.disk import SimulatedDisk
from ..storage.iostats import IOStats
from ..storage.page import PAGE_SIZE, ParityHeader, TwinState, ZERO_PAGE


class TwistStore:
    """Twin-page data storage over a pair-per-page disk layout.

    Args:
        num_pages: logical pages.
        num_disks: disks to spread the twins over (>= 2 so a page's
            twins never share a disk).
        stats: shared transfer counters.
    """

    def __init__(self, num_pages: int, num_disks: int = 4,
                 stats: IOStats | None = None) -> None:
        if num_pages < 1:
            raise ValueError("need at least one page")
        if num_disks < 2:
            raise ValueError("twins need at least two disks")
        self.num_pages = num_pages
        self.stats = stats if stats is not None else IOStats()
        slots_per_disk = -(-2 * num_pages // num_disks)
        self.disks = [SimulatedDisk(d, slots_per_disk, self.stats)
                      for d in range(num_disks)]
        self._clock = 0
        self._current = [0] * num_pages          # the main-memory bit map
        self._owner: dict = {}                   # page -> uncommitted txn
        self._pages_of: dict = {}                # txn -> set of pages

    # -- addressing -----------------------------------------------------------------

    def _address(self, page: int, twin: int):
        index = 2 * page + twin
        disk = index % len(self.disks)
        slot = index // len(self.disks)
        return disk, slot

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.num_pages:
            raise ValueError(f"page {page} out of range")

    def _stamp(self) -> int:
        self._clock += 1
        return self._clock

    # -- I/O ----------------------------------------------------------------------------

    def load(self, payloads: dict) -> None:
        """Bulk-load committed initial contents (outside any txn)."""
        for page, payload in payloads.items():
            self._check_page(page)
            if len(payload) != PAGE_SIZE:
                raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
            twin = self._current[page]
            disk, slot = self._address(page, twin)
            header = ParityHeader(timestamp=self._stamp(),
                                  state=TwinState.COMMITTED)
            self.disks[disk].write_with_header(slot, payload, header)

    def read(self, page: int) -> bytes:
        """Current contents of a logical page (1 transfer)."""
        self._check_page(page)
        twin = self._current[page]
        if page in self._owner:
            twin = 1 - twin                      # uncommitted version is live
        disk, slot = self._address(page, twin)
        return self.disks[disk].read(slot)

    def read_committed(self, page: int) -> bytes:
        """Last committed contents, even mid-transaction (1 transfer)."""
        self._check_page(page)
        disk, slot = self._address(page, self._current[page])
        return self.disks[disk].read(slot)

    def write(self, page: int, payload: bytes, txn_id: int) -> None:
        """Write an uncommitted version into the free twin (1 transfer).

        Raises:
            ParityGroupError: another transaction's uncommitted version
                already occupies the free twin.
        """
        self._check_page(page)
        if len(payload) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        owner = self._owner.get(page)
        if owner is not None and owner != txn_id:
            raise ParityGroupError(
                f"page {page} already holds uncommitted data of txn {owner}")
        twin = 1 - self._current[page]
        disk, slot = self._address(page, twin)
        header = ParityHeader(timestamp=self._stamp(), txn_id=txn_id,
                              dirty_page_index=page, state=TwinState.WORKING)
        self.disks[disk].write_with_header(slot, payload, header)
        self._owner[page] = txn_id
        self._pages_of.setdefault(txn_id, set()).add(page)

    # -- EOT ---------------------------------------------------------------------------------

    def commit(self, txn_id: int) -> list:
        """Flip the bit map for the transaction's pages; zero I/O.
        Returns the pages committed."""
        pages = sorted(self._pages_of.pop(txn_id, ()))
        for page in pages:
            self._current[page] = 1 - self._current[page]
            del self._owner[page]
        return pages

    def abort(self, txn_id: int) -> list:
        """Abandon the transaction's twins; zero I/O (TWIST's headline).
        Returns the pages rolled back."""
        pages = sorted(self._pages_of.pop(txn_id, ()))
        for page in pages:
            del self._owner[page]
        return pages

    # -- crash ------------------------------------------------------------------------------------

    def crash(self) -> None:
        """Lose the main-memory bit map and ownership tables."""
        self._owner.clear()
        self._pages_of.clear()
        self._current = [0] * self.num_pages

    def recover(self, committed_txns: set) -> dict:
        """Rebuild the bit map by scanning both twins of every page
        (2 transfers per page), trusting WORKING twins only when their
        transaction is in ``committed_txns`` — the TWIST analogue of the
        paper's ``Current_Parity``.

        Returns ``{"losers": sorted set of uncommitted txn ids seen}``.
        """
        losers = set()
        for page in range(self.num_pages):
            headers = []
            for twin in range(2):
                disk, slot = self._address(page, twin)
                self.disks[disk].read(slot)      # pay for the scan
                headers.append(self.disks[disk].read_header(slot))
            best, best_stamp = 0, -1
            for twin, header in enumerate(headers):
                trusted = (header.state is TwinState.COMMITTED
                           or (header.state is TwinState.WORKING
                               and header.txn_id in committed_txns))
                if trusted and header.timestamp > best_stamp:
                    best, best_stamp = twin, header.timestamp
                if (header.state is TwinState.WORKING
                        and header.txn_id not in committed_txns
                        and header.txn_id >= 0):
                    losers.add(header.txn_id)
            if best_stamp < 0:
                best = 0                         # never-written page
            self._current[page] = best
            self._clock = max(self._clock,
                              max(h.timestamp for h in headers))
        return {"losers": sorted(losers)}

    # -- introspection --------------------------------------------------------------------------------

    def storage_overhead(self) -> float:
        """Fraction of raw capacity spent on redundancy: always 1/2."""
        return 0.5

    def peek_committed(self, page: int) -> bytes:
        """Committed contents without accounting (tests)."""
        disk, slot = self._address(page, self._current[page])
        return self.disks[disk].peek(slot)

    def uncommitted_pages(self) -> list:
        """Pages currently holding an uncommitted version."""
        return sorted(self._owner)
