"""A simulated disk.

Each :class:`SimulatedDisk` stores fixed-size page payloads plus the
out-of-band parity headers described in :mod:`repro.storage.page`.  It
supports *fail-stop* failure injection (:meth:`fail` / :meth:`replace`)
so that media-recovery code paths can be exercised for real: a failed
disk raises :class:`~repro.errors.DiskFailedError` on every access and a
replaced disk comes back blank, forcing the array layer to rebuild its
contents from parity.

All I/O is counted against an :class:`~repro.storage.iostats.IOStats`
instance, which is the cost model's unit of measure.
"""

from __future__ import annotations

import zlib

from ..errors import AddressError, DiskFailedError, LatentSectorError
from .iostats import IOStats
from .page import PAGE_SIZE, ZERO_PAGE, ParityHeader


class SimulatedDisk:
    """One disk of ``capacity`` page slots.

    Args:
        disk_id: identifier used in addressing and statistics.
        capacity: number of page slots on the disk.
        stats: shared I/O counter; a private one is created if omitted.
    """

    def __init__(self, disk_id: int, capacity: int, stats: IOStats | None = None) -> None:
        if capacity <= 0:
            raise ValueError("disk capacity must be positive")
        self.disk_id = disk_id
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._pages: dict = {}
        self._headers: dict = {}
        # Checksum bookkeeping is lazy: a full ``slot -> crc32`` map
        # maintained on every write costs a crc per page transfer, yet
        # only matters for slots whose stored bytes may differ from what
        # the writer intended.  ``_suspect`` maps exactly those slots
        # (fault-hook replacements, injected corruption) to the crc of
        # the *intended* contents; ``_written`` records which slots ever
        # stored a checksum, preserving the legacy rule that corrupting
        # a never-written slot has no checksum to contradict.
        self._suspect: dict = {}
        self._written: set = set()
        self._failed = False
        self.read_count = 0
        self.write_count = 0
        self.on_access = None   # optional hook: (disk_id, slot, kind)
        # fault-injection seam: called before a write lands with
        # (disk_id, slot, payload); may raise to abort the write (nothing
        # lands or is counted) or return replacement bytes to store — the
        # checksum recorded is always that of the *intended* payload, so
        # a mangled replacement surfaces as a LatentSectorError on read.
        self.fault_hook = None

    # -- failure injection -------------------------------------------------

    @property
    def failed(self) -> bool:
        """True while the disk is in the failed state."""
        return self._failed

    def fail(self) -> None:
        """Fail the disk (fail-stop): contents become inaccessible."""
        self._failed = True

    def replace(self) -> None:
        """Swap in a blank replacement disk.

        The old contents are gone; the array layer must rebuild them from
        the surviving disks' parity.
        """
        self._pages.clear()
        self._headers.clear()
        self._suspect.clear()
        self._written.clear()
        self._failed = False

    def slot_written(self, slot: int) -> bool:
        """True when the slot has ever stored checksummed bytes.

        Corruption injected into a never-written slot is *undetectable*
        (there is no checksum to contradict), so fault injectors that
        need the scrubber to find their damage should target written
        slots only."""
        return slot in self._written

    def corrupt(self, slot: int) -> None:
        """Inject a latent sector error: flip bits without updating the
        checksum, so the next read raises
        :class:`~repro.errors.LatentSectorError`."""
        if slot in self._written and slot not in self._suspect:
            # the recorded checksum is that of the currently stored
            # bytes; pin it before they are flipped
            self._suspect[slot] = zlib.crc32(self._pages.get(slot, ZERO_PAGE))
        payload = bytearray(self._pages.get(slot, ZERO_PAGE))
        payload[0] ^= 0xFF
        payload[-1] ^= 0xFF
        self._pages[slot] = bytes(payload)
        # checksum left stale on purpose

    def revive(self) -> None:
        """Un-fail the disk *keeping* its contents (transient fault model)."""
        self._failed = False

    # -- I/O ----------------------------------------------------------------

    def _check(self, slot: int, operation: str) -> None:
        if self._failed:
            raise DiskFailedError(self.disk_id, operation)
        if not 0 <= slot < self.capacity:
            raise AddressError(
                f"slot {slot} out of range on disk {self.disk_id} (capacity {self.capacity})"
            )

    def read(self, slot: int) -> bytes:
        """Read the payload at ``slot`` (zero page if never written).

        Raises:
            LatentSectorError: stored checksum does not match — a latent
                sector error the caller should repair from redundancy.
        """
        if self._failed:
            raise DiskFailedError(self.disk_id, "read")
        if not 0 <= slot < self.capacity:
            self._check(slot, "read")
        self.read_count += 1
        stats = self.stats       # record_read(disk_id), inlined
        stats.reads += 1
        per_disk = stats.per_disk_reads
        per_disk[self.disk_id] = per_disk.get(self.disk_id, 0) + 1
        if self.on_access is not None:
            self.on_access(self.disk_id, slot, "read")
        payload = self._pages.get(slot, ZERO_PAGE)
        if self._suspect:
            expected = self._suspect.get(slot)
            if expected is not None and zlib.crc32(payload) != expected:
                raise LatentSectorError(self.disk_id, slot)
        return payload

    def write(self, slot: int, payload: bytes) -> None:
        """Write a full-page payload at ``slot``."""
        if self._failed:
            raise DiskFailedError(self.disk_id, "write")
        if not 0 <= slot < self.capacity:
            self._check(slot, "write")
        if len(payload) != PAGE_SIZE:
            raise ValueError(f"payload must be {PAGE_SIZE} bytes, got {len(payload)}")
        stored = payload
        if self.fault_hook is not None:
            replacement = self.fault_hook(self.disk_id, slot, payload)
            if replacement is not None:
                stored = replacement
        self.write_count += 1
        stats = self.stats       # record_write(disk_id), inlined
        stats.writes += 1
        per_disk = stats.per_disk_writes
        per_disk[self.disk_id] = per_disk.get(self.disk_id, 0) + 1
        if self.on_access is not None:
            self.on_access(self.disk_id, slot, "write")
        self._pages[slot] = bytes(stored)
        self._written.add(slot)
        if stored is not payload and stored != payload:
            # a mangled replacement landed: record the intended crc so
            # the mismatch surfaces as a LatentSectorError on read
            self._suspect[slot] = zlib.crc32(payload)
        elif self._suspect:
            self._suspect.pop(slot, None)   # clean overwrite heals

    def read_header(self, slot: int) -> ParityHeader:
        """Read the out-of-band parity header stored with ``slot``.

        Header reads ride along with the page transfer in a real system
        (the header occupies the first bytes of the sector), so they are
        *not* counted as extra transfers; call sites that read only the
        header still pay for the page via :meth:`read`.
        """
        self._check(slot, "read header")
        return self._headers.get(slot, ParityHeader())

    def write_header(self, slot: int, header: ParityHeader) -> None:
        """Write the out-of-band parity header for ``slot`` (no transfer
        counted: it travels with the page write)."""
        self._check(slot, "write header")
        self._headers[slot] = header

    def read_with_header(self, slot: int) -> tuple:
        """Read payload and header in one page transfer."""
        payload = self.read(slot)
        return payload, self._headers.get(slot, ParityHeader())

    def write_with_header(self, slot: int, payload: bytes, header: ParityHeader) -> None:
        """Write payload and header in one page transfer."""
        self.write(slot, payload)
        self._headers[slot] = header

    # -- introspection (no transfer cost; test/debug only) -------------------

    def peek(self, slot: int) -> bytes:
        """Read payload without failure checks or accounting (tests only)."""
        return self._pages.get(slot, ZERO_PAGE)

    def peek_header(self, slot: int) -> ParityHeader:
        """Read header without failure checks or accounting (tests only)."""
        return self._headers.get(slot, ParityHeader())

    def written_slots(self) -> list:
        """Sorted list of slots that have ever been written."""
        return sorted(self._pages)

    def bad_sectors(self) -> list:
        """Sorted slots whose stored bytes no longer match their checksum
        (latent sector errors awaiting repair).  No transfer cost: this
        models the media scan a restart performs against sector CRCs."""
        return sorted(slot for slot, expected in self._suspect.items()
                      if zlib.crc32(self._pages.get(slot, ZERO_PAGE))
                      != expected)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "FAILED" if self._failed else "ok"
        return f"SimulatedDisk(id={self.disk_id}, capacity={self.capacity}, {state})"
