"""Tests for the buffer pool: hits/misses, eviction, STEAL/FORCE hooks."""

import pytest

from repro.buffer import BufferPool
from repro.errors import BufferFullError, PageNotPinnedError
from repro.storage.page import PAGE_SIZE, make_page


class Backing:
    """Fake backing store recording write-backs."""

    def __init__(self):
        self.pages = {}
        self.writebacks = []

    def fetch(self, page_id):
        return self.pages.get(page_id, bytes(PAGE_SIZE))

    def writeback(self, page_id, payload, modifiers):
        self.pages[page_id] = payload
        self.writebacks.append((page_id, frozenset(modifiers)))


@pytest.fixture
def backing():
    return Backing()


def make_pool(backing, capacity=3, **kwargs):
    return BufferPool(capacity, backing.fetch, backing.writeback, **kwargs)


class TestBasics:
    def test_miss_then_hit(self, backing):
        backing.pages[7] = make_page(b"seven")
        pool = make_pool(backing)
        assert pool.get_page(7) == make_page(b"seven")
        assert pool.get_page(7) == make_page(b"seven")
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pool.stats.hit_ratio == 0.5

    def test_put_marks_dirty_and_modifier(self, backing):
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"x"), txn_id=42)
        assert pool.is_dirty(1)
        assert pool.modifiers_of(1) == {42}

    def test_put_without_txn(self, backing):
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"x"))
        assert pool.is_dirty(1)
        assert pool.modifiers_of(1) == frozenset()

    def test_capacity_validation(self, backing):
        with pytest.raises(ValueError):
            make_pool(backing, capacity=0)

    def test_contains_and_resident(self, backing):
        pool = make_pool(backing)
        pool.get_page(3)
        pool.get_page(1)
        assert 3 in pool and 1 in pool and 2 not in pool
        assert pool.resident_pages() == [1, 3]


class TestEviction:
    def test_lru_victim(self, backing):
        pool = make_pool(backing, capacity=2)
        pool.get_page(1)
        pool.get_page(2)
        pool.get_page(1)       # 2 is now LRU
        pool.get_page(3)       # evicts 2
        assert 2 not in pool
        assert 1 in pool and 3 in pool

    def test_dirty_eviction_writes_back(self, backing):
        pool = make_pool(backing, capacity=1)
        pool.put_page(1, make_page(b"one"), txn_id=5)
        pool.get_page(2)
        assert backing.pages[1] == make_page(b"one")
        assert backing.writebacks == [(1, frozenset({5}))]
        assert pool.stats.dirty_evictions == 1
        assert pool.stats.steals == 1

    def test_clean_eviction_silent(self, backing):
        pool = make_pool(backing, capacity=1)
        pool.get_page(1)
        pool.get_page(2)
        assert backing.writebacks == []
        assert pool.stats.evictions == 1

    def test_pinned_never_evicted(self, backing):
        pool = make_pool(backing, capacity=2)
        pool.pin(1)
        pool.get_page(2)
        pool.get_page(3)   # must evict 2, not pinned 1
        assert 1 in pool

    def test_all_pinned_raises(self, backing):
        pool = make_pool(backing, capacity=1)
        pool.pin(1)
        with pytest.raises(BufferFullError):
            pool.get_page(2)

    def test_unpin_allows_eviction(self, backing):
        pool = make_pool(backing, capacity=1)
        pool.pin(1)
        pool.unpin(1)
        pool.get_page(2)
        assert 1 not in pool

    def test_unpin_unpinned_raises(self, backing):
        pool = make_pool(backing)
        pool.get_page(1)
        with pytest.raises(PageNotPinnedError):
            pool.unpin(1)

    def test_clock_policy_works(self, backing):
        pool = make_pool(backing, capacity=2, policy="clock")
        pool.get_page(1)
        pool.get_page(2)
        pool.get_page(3)
        assert len(pool.resident_pages()) == 2

    def test_unknown_policy_rejected(self, backing):
        with pytest.raises(ValueError):
            make_pool(backing, policy="fifo")


class TestStealDiscipline:
    def test_no_steal_protects_uncommitted(self, backing):
        pool = make_pool(backing, capacity=2, steal=False)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        pool.put_page(2, make_page(b"b"), txn_id=1)
        with pytest.raises(BufferFullError):
            pool.get_page(3)
        assert backing.writebacks == []

    def test_no_steal_allows_committed_dirty_eviction(self, backing):
        pool = make_pool(backing, capacity=1, steal=False)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        pool.clear_modifier(1)     # txn 1 committed
        pool.get_page(2)
        assert backing.pages[1] == make_page(b"a")

    def test_steal_allows_uncommitted_eviction(self, backing):
        pool = make_pool(backing, capacity=1, steal=True)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        pool.get_page(2)
        assert backing.writebacks == [(1, frozenset({1}))]


class TestFlushing:
    def test_flush_page(self, backing):
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        assert pool.flush_page(1)
        assert backing.pages[1] == make_page(b"a")
        assert not pool.is_dirty(1)
        assert not pool.flush_page(1)   # already clean

    def test_flush_absent_page(self, backing):
        pool = make_pool(backing)
        assert not pool.flush_page(99)

    def test_flush_pages_of_txn_force_discipline(self, backing):
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        pool.put_page(2, make_page(b"b"), txn_id=2)
        flushed = pool.flush_pages_of(1)
        assert flushed == [1]
        assert pool.is_dirty(2)

    def test_flush_all_dirty(self, backing):
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        pool.put_page(2, make_page(b"b"), txn_id=2)
        pool.get_page(0)
        assert sorted(pool.flush_all_dirty()) == [1, 2]
        assert pool.dirty_pages() == []


class TestInvalidation:
    def test_invalidate_drops_without_writeback(self, backing):
        backing.pages[1] = make_page(b"disk")
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"mem"), txn_id=1)
        pool.invalidate(1)
        assert backing.pages[1] == make_page(b"disk")
        assert 1 not in pool
        assert pool.get_page(1) == make_page(b"disk")

    def test_invalidate_absent_is_noop(self, backing):
        pool = make_pool(backing)
        pool.invalidate(5)

    def test_invalidate_all_simulates_crash(self, backing):
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        pool.get_page(2)
        pool.invalidate_all()
        assert pool.resident_pages() == []
        assert backing.writebacks == []
        assert pool.stats.references == 0

    def test_clear_modifier_keeps_dirty(self, backing):
        pool = make_pool(backing)
        pool.put_page(1, make_page(b"a"), txn_id=1)
        pool.clear_modifier(1)
        assert pool.is_dirty(1)
        assert pool.modifiers_of(1) == frozenset()
