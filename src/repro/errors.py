"""Exception hierarchy for the RDA recovery reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the narrowest type
that describes the failure.

Errors with multi-argument constructors define ``__reduce__`` so they
survive a pickle round trip unchanged — the worker protocol
(:mod:`repro.db.workers`) ships exceptions raised inside a shard
worker process back to the facade and re-raises them verbatim.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for disk/array level errors."""


class DiskFailedError(StorageError):
    """An I/O was issued to a disk that is in the failed state."""

    def __init__(self, disk_id: int, operation: str = "access") -> None:
        self.disk_id = disk_id
        self.operation = operation
        super().__init__(f"disk {disk_id} is failed; cannot {operation}")

    def __reduce__(self):
        return (DiskFailedError, (self.disk_id, self.operation))


class AddressError(StorageError):
    """A page number or physical address is out of range."""


class ArrayDegradedError(StorageError):
    """An operation needs more redundancy than the array currently has."""


class UnrecoverableDataError(StorageError):
    """Data loss: more failures than the redundancy can mask."""


class LatentSectorError(StorageError):
    """A read hit a corrupt sector (checksum mismatch)."""

    def __init__(self, disk_id: int, slot: int) -> None:
        self.disk_id = disk_id
        self.slot = slot
        super().__init__(
            f"checksum mismatch reading disk {disk_id} slot {slot}")

    def __reduce__(self):
        return (LatentSectorError, (self.disk_id, self.slot))


class BufferError_(ReproError):
    """Base class for buffer-manager errors (trailing underscore avoids
    shadowing the builtin :class:`BufferError`)."""


class BufferFullError(BufferError_):
    """No replaceable frame exists (all frames pinned)."""


class PageNotPinnedError(BufferError_):
    """An unpin/dirty call targeted a page that is not pinned."""


class TransactionError(ReproError):
    """Base class for transaction-manager errors."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (deadlock victim or explicit abort)."""

    def __init__(self, txn_id: int, reason: str = "aborted") -> None:
        self.txn_id = txn_id
        self.reason = reason
        super().__init__(f"transaction {txn_id} {reason}")

    def __reduce__(self):
        return (TransactionAborted, (self.txn_id, self.reason))


class InvalidTransactionState(TransactionError):
    """An operation was issued against a finished or unknown transaction."""


class DeadlockError(TransactionError):
    """A lock request would close a cycle in the wait-for graph."""

    def __init__(self, txn_id: int, cycle: tuple) -> None:
        self.txn_id = txn_id
        self.cycle = cycle
        super().__init__(f"deadlock: transaction {txn_id} in cycle {cycle}")

    def __reduce__(self):
        return (DeadlockError, (self.txn_id, self.cycle))


class LockError(TransactionError):
    """Lock protocol violation (e.g. releasing a lock that is not held)."""


class LogError(ReproError):
    """Base class for write-ahead-log errors."""


class LogCorruptionError(LogError):
    """A log record failed to deserialize or the duplexed copies diverge."""


class TornRecordError(LogCorruptionError):
    """A record was cut short by crash truncation — expected data loss at
    the durable boundary, not corruption."""


class RecoveryError(ReproError):
    """Crash/media recovery could not restore a consistent state."""


class ParityGroupError(ReproError):
    """RDA parity-group protocol violation (e.g. two unlogged dirty pages)."""


class ModelError(ReproError):
    """Analytical-model parameter validation failure."""
