"""End-to-end property tests: the ACID invariants under random workloads.

A shadow model tracks what the committed state *should* be; hypothesis
drives random interleavings of writes, commits, aborts, checkpoints and
crashes across all eight configurations, and we assert the database
agrees with the shadow afterwards — plus parity consistency.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import Database, all_preset_names, preset
from repro.db.database import LockWait
from repro.errors import DeadlockError
from repro.storage import make_page
from repro.storage.page import PAGE_SIZE

SMALL = dict(group_size=3, num_groups=4, buffer_capacity=5)


def fresh_db(name):
    db = Database(preset(name, **SMALL))
    if db.config.record_logging:
        db.format_record_pages(range(db.num_data_pages))
    return db


page_payloads = st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE)


@pytest.mark.parametrize("name", [n for n in all_preset_names()
                                  if n.startswith("page")])
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_page_mode_acid_with_crashes(name, data):
    db = fresh_db(name)
    committed = {p: bytes(PAGE_SIZE) for p in range(db.num_data_pages)}
    live = {}          # txn -> {page: payload}

    def finish_all_and_check():
        for txn in sorted(live):
            db.commit(txn)
            committed.update(live[txn])
        live.clear()
        db.buffer.flush_all_dirty()
        assert db.verify_parity() == []
        for page, expected in committed.items():
            assert db.disk_page(page) == expected

    steps = data.draw(st.integers(5, 30), label="steps")
    for _ in range(steps):
        action = data.draw(st.sampled_from(
            ["begin", "write", "commit", "abort", "checkpoint", "crash"]),
            label="action")
        if action == "begin" and len(live) < 3:
            live[db.begin()] = {}
        elif action == "write" and live:
            txn = data.draw(st.sampled_from(sorted(live)), label="txn")
            page = data.draw(st.integers(0, db.num_data_pages - 1),
                             label="page")
            payload = data.draw(page_payloads, label="payload")
            try:
                db.write_page(txn, page, payload)
            except (LockWait, DeadlockError):
                continue
            live[txn][page] = payload
        elif action == "commit" and live:
            txn = data.draw(st.sampled_from(sorted(live)), label="ctxn")
            db.commit(txn)
            committed.update(live.pop(txn))
        elif action == "abort" and live:
            txn = data.draw(st.sampled_from(sorted(live)), label="atxn")
            db.abort(txn)
            live.pop(txn)
        elif action == "checkpoint" and db.checkpointer is not None:
            db.checkpoint()
        elif action == "crash":
            db.crash()
            db.recover()
            live.clear()       # every active transaction died
            # durability: committed state visible right now
            t = db.begin()
            for page, expected in committed.items():
                assert db.read_page(t, page) == expected
            db.commit(t)
    finish_all_and_check()


@pytest.mark.parametrize("name", [n for n in all_preset_names()
                                  if n.startswith("record")])
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_record_mode_acid_with_crashes(name, data):
    db = fresh_db(name)
    # seed some committed records
    committed = {}
    seeder = db.begin()
    for page in range(db.num_data_pages):
        for i in range(2):
            slot = db.insert_record(seeder, page, b"seed%d" % i)
            committed[(page, slot)] = b"seed%d" % i
    db.commit(seeder)
    live = {}          # txn -> {(page, slot): value-or-None}

    steps = data.draw(st.integers(5, 25), label="steps")
    for _ in range(steps):
        action = data.draw(st.sampled_from(
            ["begin", "update", "insert", "delete", "commit", "abort",
             "checkpoint", "crash"]), label="action")
        if action == "begin" and len(live) < 3:
            live[db.begin()] = {}
        elif action in ("update", "delete") and live and committed:
            txn = data.draw(st.sampled_from(sorted(live)), label="txn")
            # only touch records no other live txn holds (avoid waits)
            eligible = [rid for rid in sorted(committed)
                        if not any(rid in ch and t != txn
                                   for t, ch in live.items())
                        and committed[rid] is not None]
            if not eligible:
                continue
            rid = data.draw(st.sampled_from(eligible), label="rid")
            try:
                if action == "update":
                    value = data.draw(st.binary(min_size=1, max_size=20),
                                      label="value")
                    db.update_record(txn, rid[0], rid[1], value)
                    live[txn][rid] = value
                else:
                    db.delete_record(txn, rid[0], rid[1])
                    live[txn][rid] = None
            except (LockWait, DeadlockError, KeyError):
                continue
        elif action == "insert" and live:
            txn = data.draw(st.sampled_from(sorted(live)), label="itxn")
            page = data.draw(st.integers(0, db.num_data_pages - 1),
                             label="ipage")
            value = data.draw(st.binary(min_size=1, max_size=20),
                              label="ivalue")
            try:
                slot = db.insert_record(txn, page, value)
            except (LockWait, DeadlockError, Exception):
                continue
            live[txn][(page, slot)] = value
        elif action == "commit" and live:
            txn = data.draw(st.sampled_from(sorted(live)), label="ctxn")
            db.commit(txn)
            for rid, value in live.pop(txn).items():
                committed[rid] = value
        elif action == "abort" and live:
            txn = data.draw(st.sampled_from(sorted(live)), label="atxn")
            db.abort(txn)
            live.pop(txn)
        elif action == "checkpoint" and db.checkpointer is not None:
            db.checkpoint()
        elif action == "crash":
            db.crash()
            db.recover()
            live.clear()

    for txn in sorted(live):
        db.abort(txn)
    live.clear()
    reader = db.begin()
    for (page, slot), value in committed.items():
        if value is None:
            with pytest.raises(KeyError):
                db.read_record(reader, page, slot)
        else:
            assert db.read_record(reader, page, slot) == value
    db.commit(reader)
    db.buffer.flush_all_dirty()
    assert db.verify_parity() == []
