"""Disk arrays: redundancy mechanics over a set of simulated disks.

:class:`DiskArray` owns the disks, the geometry, and the shared I/O
counters, and implements everything both parity organizations share:
degraded reads, scrubbing, disk failure and rebuild.

:class:`SingleParityArray` adds the classical RAID small-write protocol
(read old data, read old parity, XOR, write data, write parity — four
page transfers, three when the old data is already in the caller's
buffer), which is the ``a ∈ {3, 4}`` constant of the paper's cost model,
plus full-stripe writes for bulk loading.

The twin-parity variant used by RDA recovery lives in
:mod:`repro.storage.twin_array`.

All parity arithmetic routes through the vectorized page kernels
(:mod:`repro.storage.kernels`): reconstruction and rebuild paths gather
their operands and reduce them in one batched k-page XOR rather than
k-1 pairwise passes.
"""

from __future__ import annotations

from ..errors import (AddressError, ArrayDegradedError, LatentSectorError,
                      UnrecoverableDataError)
from ..obs.tracer import NULL_TRACER
from .disk import SimulatedDisk
from .geometry import Geometry, PhysAddr
from .iostats import IOStats
from .page import PAGE_SIZE, ParityHeader, compute_parity, xor_pages


class DiskArray:
    """Base array: disks + geometry + shared accounting.

    Args:
        geometry: the :class:`~repro.storage.geometry.Geometry` to realize.
        stats: shared :class:`IOStats`; a fresh one is created if omitted.
        tracer: event tracer (default: the shared disabled tracer).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    #: capability flag checked by the recovery layer instead of
    #: isinstance/hasattr probes; :class:`~repro.storage.twin_array.
    #: TwinParityArray` overrides it to True
    supports_twins = False

    def __init__(self, geometry: Geometry, stats: IOStats | None = None,
                 tracer=None, metrics=None) -> None:
        self.geometry = geometry
        self.stats = stats if stats is not None else IOStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._xfer_hist = (metrics.histogram("array.small_write_transfers")
                           if metrics is not None else None)
        self.disks = [
            SimulatedDisk(d, geometry.capacity_per_disk, self.stats)
            for d in range(geometry.num_disks)
        ]

    # -- basic addressing ------------------------------------------------------

    @property
    def num_data_pages(self) -> int:
        """Number of logical data pages (S)."""
        return self.geometry.num_data_pages

    def failed_disks(self) -> list:
        """Ids of disks currently failed."""
        return [d.disk_id for d in self.disks if d.failed]

    @property
    def any_failed(self) -> bool:
        """True while any disk is failed (gates the batched write path,
        which assumes an intact array)."""
        return any(d.failed for d in self.disks)

    def _read_at(self, addr: PhysAddr) -> bytes:
        return self.disks[addr.disk].read(addr.slot)

    def _write_at(self, addr: PhysAddr, payload: bytes) -> None:
        self.disks[addr.disk].write(addr.slot, payload)

    # -- reads (including degraded mode) ----------------------------------------

    def read_page(self, page: int) -> bytes:
        """Read logical data page ``page``.

        If its disk has failed, the contents are reconstructed from the
        surviving group members and the group's parity (a *degraded
        read*, costing N page transfers instead of 1).
        """
        addr = self.geometry.data_address(page)
        if not self.disks[addr.disk].failed:
            return self._read_at(addr)
        if not self.tracer.enabled:
            return self._reconstruct_data_page(page)
        with self.stats.window() as window:
            payload = self._reconstruct_data_page(page)
        self.tracer.emit_costed("array.degraded_read", window, page=page)
        return payload

    def _reconstruct_data_page(self, page: int) -> bytes:
        group = self.geometry.group_of(page)
        pieces = []
        for mate in self.geometry.group_pages(group):
            if mate == page:
                continue
            mate_addr = self.geometry.data_address(mate)
            if self.disks[mate_addr.disk].failed:
                raise UnrecoverableDataError(
                    f"two failed data disks in group {group}; page {page} lost"
                )
            pieces.append(self._read_at(mate_addr))
        pieces.append(self._group_parity_for_reconstruction(group))
        return xor_pages(*pieces)

    def _group_parity_for_reconstruction(self, group: int) -> bytes:
        """Parity payload to use when reconstructing a lost data page.

        Single-parity arrays read their one parity page; the twin array
        overrides this to pick the twin that reflects the current on-disk
        data.
        """
        (addr,) = self.geometry.parity_addresses(group)
        if self.disks[addr.disk].failed:
            raise UnrecoverableDataError(
                f"group {group}: both a data disk and the parity disk are failed"
            )
        return self._read_at(addr)

    # -- failure handling --------------------------------------------------------

    def fail_disk(self, disk_id: int) -> None:
        """Inject a fail-stop failure on ``disk_id``."""
        self._check_disk(disk_id)
        self.disks[disk_id].fail()

    def rebuild_disk(self, disk_id: int) -> int:
        """Replace ``disk_id`` with a blank disk and rebuild its contents.

        Data slots are reconstructed from group mates + parity; parity
        slots are recomputed from the group's data.  Returns the number
        of slots rebuilt.  Raises
        :class:`~repro.errors.UnrecoverableDataError` if a second failure
        makes some slot unrecoverable.
        """
        self._check_disk(disk_id)
        with self.tracer.span("array.rebuild", stats=self.stats,
                              disk=disk_id) as span:
            disk = self.disks[disk_id]
            disk.replace()
            rebuilt = 0
            for slot, page in self.geometry.pages_on_disk(disk_id):
                payload = self._reconstruct_data_page(page)
                disk.write(slot, payload)
                rebuilt += 1
            for group in self.geometry.groups_with_parity_on(disk_id):
                rebuilt += self._rebuild_parity_slot(disk_id, group)
            span.set(slots=rebuilt)
        if self.metrics is not None:
            self.metrics.counter("array.rebuilds").inc()
        return rebuilt

    def _rebuild_parity_slot(self, disk_id: int, group: int) -> int:
        """Recompute the parity slot(s) of ``group`` living on ``disk_id``."""
        data = [self.read_page(p) for p in self.geometry.group_pages(group)]
        parity = compute_parity(data)
        written = 0
        for addr in self.geometry.parity_addresses(group):
            if addr.disk == disk_id:
                self.disks[disk_id].write_with_header(addr.slot, parity, ParityHeader())
                written += 1
        return written

    def rewrite_parity(self, group: int, data: list,
                       disk_id: int | None = None) -> None:
        """Rewrite the parity page(s) of ``group`` from its data payloads.

        Used by restart parity resync and sector repair, which already
        hold the group's data in hand.  With ``disk_id`` set, only the
        parity page(s) living on that disk are rewritten (sector repair);
        otherwise every parity address of the group is refreshed.
        Backends with richer parity (RAID-6's P+Q) override this to write
        each page its own encoding.
        """
        parity = compute_parity(data)
        for addr in self.geometry.parity_addresses(group):
            if disk_id is not None and addr.disk != disk_id:
                continue
            self.disks[addr.disk].write(addr.slot, parity)

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < len(self.disks):
            raise AddressError(f"disk {disk_id} out of range")

    def scrub_repair(self) -> list:
        """Background scrub: read every data page (CRC-checked) and
        repair any latent sector errors from parity.  Returns the pages
        repaired.  Run it periodically, like a real array's patrol read
        — latent errors found *before* a disk failure are repairable;
        found during a rebuild they would be data loss."""
        repaired = []
        for page in range(self.num_data_pages):
            try:
                self.read_page(page)
            except LatentSectorError:
                self.repair_page(page)
                repaired.append(page)
        return repaired

    def provision_spares(self, count: int) -> None:
        """Stock ``count`` hot-spare drives."""
        if count < 0:
            raise ValueError("spare count must be non-negative")
        self._spares = getattr(self, "_spares", 0) + count

    @property
    def spare_count(self) -> int:
        """Hot spares remaining."""
        return getattr(self, "_spares", 0)

    def rebuild_with_spare(self, disk_id: int, **kwargs):
        """Rebuild a failed disk onto a hot spare (consumes one).

        Raises:
            ArrayDegradedError: no spare in stock — the array stays
                degraded until one is provisioned.
        """
        if self.spare_count < 1:
            raise ArrayDegradedError(
                f"disk {disk_id} failed and no hot spare is available")
        self._spares -= 1
        return self.rebuild_disk(disk_id, **kwargs)

    def repair_page(self, page: int) -> bytes:
        """Repair a latent sector error on one data page.

        Reconstructs the page from its group mates + parity and rewrites
        it in place (checksummed again).  Returns the repaired payload.
        Works while the sector is corrupt but the disk is otherwise
        healthy — the RAID answer to checksum-mismatch reads.
        """
        payload = self._reconstruct_data_page(page)
        addr = self.geometry.data_address(page)
        self.disks[addr.disk].write(addr.slot, payload)
        return payload

    def read_page_healing(self, page: int) -> bytes:
        """Read a page, transparently repairing a latent sector error."""
        try:
            return self.read_page(page)
        except LatentSectorError:
            return self.repair_page(page)

    # -- verification (uncounted; used by tests and the scrubber) ----------------

    def peek_page(self, page: int) -> bytes:
        """Read a data page without accounting or failure checks (tests)."""
        addr = self.geometry.data_address(page)
        return self.disks[addr.disk].peek(addr.slot)

    def group_data_payloads(self, group: int) -> list:
        """Uncounted payloads of all data pages of ``group`` (tests)."""
        return [self.peek_page(p) for p in self.geometry.group_pages(group)]

    def scrub(self) -> list:
        """Return the list of groups whose parity does not match the data.

        Uses uncounted peeks: scrubbing is a verification aid, not part
        of the modeled workload.
        """
        bad = []
        for group in range(self.geometry.num_groups):
            if not self._group_consistent(group):
                bad.append(group)
        return bad

    def _group_consistent(self, group: int) -> bool:
        expected = compute_parity(self.group_data_payloads(group))
        (addr,) = self.geometry.parity_addresses(group)
        return self.disks[addr.disk].peek(addr.slot) == expected


class SingleParityArray(DiskArray):
    """Classical RAID array: one parity page per group, updated in place."""

    def write_page(self, page: int, new_data: bytes,
                   old_data: bytes | None = None) -> None:
        """Small write: update ``page`` and its group parity.

        Costs 4 page transfers, or 3 when ``old_data`` (the page's
        current on-disk contents) is supplied by the caller's buffer —
        exactly the model's ``a`` constant.  When recomputing the parity
        from the group's *other* members is strictly cheaper than the
        read-modify-write (only possible for two-page groups with the
        old data unbuffered: N-1 reads < 2 reads), the write switches to
        the classical *reconstruct-write* and costs N+1 transfers.

        Degraded cases: if the parity disk is failed the data is written
        without a parity update; if the data disk is failed the write is
        absorbed into parity alone (the page stays reconstructable).
        """
        if len(new_data) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        if not self.tracer.enabled:
            self._write_page_inner(page, new_data, old_data)
            return
        with self.stats.window() as window:
            mode, degraded = self._write_page_inner(page, new_data, old_data)
        self.tracer.emit_costed("array.small_write", window, page=page,
                                mode=mode, buffered=old_data is not None,
                                degraded=degraded)
        if self._xfer_hist is not None:
            self._xfer_hist.observe(window.total)

    def _write_page_inner(self, page: int, new_data: bytes,
                          old_data: bytes | None) -> tuple:
        """The write itself; returns ``(mode, degraded)`` for tracing."""
        addr = self.geometry.data_address(page)
        group = self.geometry.group_of(page)
        (parity_addr,) = self.geometry.parity_addresses(group)
        data_disk = self.disks[addr.disk]
        parity_disk = self.disks[parity_addr.disk]

        if data_disk.failed:
            if parity_disk.failed:
                raise UnrecoverableDataError(
                    f"group {group}: data and parity disks both failed"
                )
            old = self._reconstruct_data_page(page) if old_data is None else old_data
            old_parity = self._read_at(parity_addr)
            new_parity = xor_pages(old_parity, old, new_data)
            self._write_at(parity_addr, new_parity)
            return "small", True

        if parity_disk.failed:
            self._write_at(addr, new_data)
            return "small", True

        # small write reads {old data?, old parity}; reconstruct-write
        # reads the N-1 group mates — take the cheaper plan
        small_reads = (2 if old_data is None else 1)
        if self.geometry.group_size - 1 < small_reads \
                and not any(d.failed for d in self.disks):
            mates = [self._read_at(self.geometry.data_address(mate))
                     for mate in self.geometry.group_pages(group)
                     if mate != page]
            self._write_at(addr, new_data)
            self._write_at(parity_addr, compute_parity([*mates, new_data]))
            return "reconstruct", False

        old = self._read_at(addr) if old_data is None else old_data
        old_parity = self._read_at(parity_addr)
        new_parity = xor_pages(old_parity, old, new_data)
        self._write_at(addr, new_data)
        self._write_at(parity_addr, new_parity)
        return "small", False

    def full_stripe_write(self, group: int, payloads: list) -> None:
        """Write every data page of ``group`` plus fresh parity.

        Costs N+1 page transfers (no reads) — the large-access case the
        paper mentions but does not model; used for bulk loading.
        """
        pages = self.geometry.group_pages(group)
        if len(payloads) != len(pages):
            raise ValueError(
                f"group {group} has {len(pages)} data pages, got {len(payloads)} payloads"
            )
        for page, payload in zip(pages, payloads):
            self._write_at(self.geometry.data_address(page), payload)
        parity = compute_parity(payloads)
        (parity_addr,) = self.geometry.parity_addresses(group)
        self._write_at(parity_addr, parity)
