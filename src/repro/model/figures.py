"""Generators for the paper's evaluation figures (9-13).

Each ``figureN`` function returns a :class:`FigureSeries` holding the
swept x values and one y series per curve, exactly the data behind the
paper's plots:

* Figure 9  — page logging, FORCE/TOC, throughput vs C, ±RDA;
* Figure 10 — page logging, ¬FORCE/ACC, throughput vs C, ±RDA;
* Figure 11 — record logging, FORCE/TOC, throughput vs C, ±RDA;
* Figure 12 — record logging, ¬FORCE/ACC, throughput vs C, ±RDA;
* Figure 13 — % throughput increase from RDA vs pages accessed s
  (record logging, ¬FORCE/ACC, high-update, C = 0.9).

Figures 9-12 are produced for both environments (high-update and
high-retrieval), as in the paper's side-by-side panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import page_logging, record_logging
from .params import high_retrieval, high_update

DEFAULT_C_SWEEP = tuple(round(0.05 * i, 2) for i in range(0, 20))
"""C from 0.0 to 0.95 in 0.05 steps (C = 1 is a model singularity)."""

DEFAULT_S_SWEEP = (5, 10, 15, 20, 25, 30, 35, 40, 45)
"""The Figure 13 sweep of pages accessed per transaction."""

_ENVIRONMENTS = {
    "high-update": high_update,
    "high-retrieval": high_retrieval,
}


@dataclass
class FigureSeries:
    """One figure's data.

    Attributes:
        name: e.g. ``"figure9"``.
        title: human-readable description.
        x_label / x_values: the sweep.
        curves: mapping ``label -> [y, ...]`` aligned with ``x_values``.
    """

    name: str
    title: str
    x_label: str
    x_values: tuple
    curves: dict = field(default_factory=dict)

    def rows(self):
        """Yield table rows: ``(x, {label: y})`` — harness output."""
        labels = list(self.curves)
        for i, x in enumerate(self.x_values):
            yield x, {label: self.curves[label][i] for label in labels}

    def format_table(self) -> str:
        """Plain-text table matching the paper's figure data."""
        labels = list(self.curves)
        header = f"{self.x_label:>8} | " + " | ".join(
            f"{label:>24}" for label in labels)
        lines = [self.title, header, "-" * len(header)]
        for x, row in self.rows():
            cells = " | ".join(f"{row[label]:24.1f}" for label in labels)
            lines.append(f"{x:8.2f} | {cells}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header row = x label + curve labels)."""
        labels = list(self.curves)
        lines = [",".join([self.x_label] + labels)]
        for x, row in self.rows():
            lines.append(",".join([f"{x:g}"] +
                                  [f"{row[label]:.3f}" for label in labels]))
        return "\n".join(lines)


def _throughput_figure(name: str, title: str, cost_fn, environments,
                       sweep) -> FigureSeries:
    figure = FigureSeries(name=name, title=title, x_label="C",
                          x_values=tuple(sweep))
    for env_name in environments:
        env = _ENVIRONMENTS[env_name]
        for rda in (False, True):
            tag = "RDA" if rda else "¬RDA"
            label = f"{env_name} {tag}"
            figure.curves[label] = [
                cost_fn(env(C=c), rda=rda).throughput for c in sweep]
    return figure


def figure9(sweep=DEFAULT_C_SWEEP, environments=("high-update",
                                                 "high-retrieval")) -> FigureSeries:
    """Throughput vs communality: page logging, FORCE, TOC."""
    return _throughput_figure(
        "figure9",
        "Figure 9: page logging, ¬ATOMIC/STEAL/FORCE/TOC — throughput vs C",
        page_logging.force_toc, environments, sweep)


def figure10(sweep=DEFAULT_C_SWEEP, environments=("high-update",
                                                  "high-retrieval")) -> FigureSeries:
    """Throughput vs communality: page logging, ¬FORCE, ACC."""
    return _throughput_figure(
        "figure10",
        "Figure 10: page logging, ¬ATOMIC/STEAL/¬FORCE/ACC — throughput vs C",
        page_logging.noforce_acc, environments, sweep)


def figure11(sweep=DEFAULT_C_SWEEP, environments=("high-update",
                                                  "high-retrieval")) -> FigureSeries:
    """Throughput vs communality: record logging, FORCE, TOC."""
    return _throughput_figure(
        "figure11",
        "Figure 11: record logging, FORCE/TOC — throughput vs C",
        record_logging.force_toc, environments, sweep)


def figure12(sweep=DEFAULT_C_SWEEP, environments=("high-update",
                                                  "high-retrieval")) -> FigureSeries:
    """Throughput vs communality: record logging, ¬FORCE, ACC."""
    return _throughput_figure(
        "figure12",
        "Figure 12: record logging, ¬FORCE/ACC — throughput vs C",
        record_logging.noforce_acc, environments, sweep)


def figure13(sweep=DEFAULT_S_SWEEP, C: float = 0.9) -> FigureSeries:
    """RDA benefit vs transaction size (record, ¬FORCE/ACC, high-update).

    The paper's final figure: percent throughput increase from adding
    RDA recovery, as a function of the pages accessed per transaction.
    """
    figure = FigureSeries(
        name="figure13",
        title=("Figure 13: % throughput increase from RDA vs pages "
               f"accessed s (record logging, ¬FORCE/ACC, C={C})"),
        x_label="s", x_values=tuple(sweep))
    benefits = []
    for s in sweep:
        params = high_update(C=C).with_(s=s)
        base = record_logging.noforce_acc(params, rda=False).throughput
        with_rda = record_logging.noforce_acc(params, rda=True).throughput
        benefits.append(100.0 * (with_rda / base - 1.0))
    figure.curves["% increase"] = benefits
    return figure


def all_figures() -> list:
    """Figures 9-13, in order."""
    return [figure9(), figure10(), figure11(), figure12(), figure13()]
