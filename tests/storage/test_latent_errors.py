"""Latent sector errors: checksum detection and parity repair."""

import pytest

from repro.errors import LatentSectorError
from repro.storage import (make_page, make_raid5, make_twin_raid5)
from repro.storage.disk import SimulatedDisk


class TestDiskChecksums:
    def test_clean_read_passes(self):
        disk = SimulatedDisk(0, 8)
        disk.write(0, make_page(b"data"))
        assert disk.read(0) == make_page(b"data")

    def test_corruption_detected(self):
        disk = SimulatedDisk(0, 8)
        disk.write(3, make_page(b"data"))
        disk.corrupt(3)
        with pytest.raises(LatentSectorError) as info:
            disk.read(3)
        assert info.value.disk_id == 0
        assert info.value.slot == 3

    def test_unwritten_slot_never_flags(self):
        disk = SimulatedDisk(0, 8)
        disk.corrupt(5)          # corrupting a never-written slot...
        # ...has no stored checksum to contradict; read returns bytes
        payload = disk.read(5)
        assert len(payload) == 512

    def test_rewrite_heals(self):
        disk = SimulatedDisk(0, 8)
        disk.write(0, make_page(b"v1"))
        disk.corrupt(0)
        disk.write(0, make_page(b"v2"))
        assert disk.read(0) == make_page(b"v2")

    def test_replace_clears_checksums(self):
        disk = SimulatedDisk(0, 8)
        disk.write(0, make_page(b"v"))
        disk.corrupt(0)
        disk.fail()
        disk.replace()
        assert disk.read(0) == bytes(512)


class TestArrayRepair:
    @pytest.fixture(params=["single", "twin"])
    def array(self, request):
        maker = make_raid5 if request.param == "single" else make_twin_raid5
        array = maker(4, 8)
        if request.param == "single":
            for p in range(array.num_data_pages):
                array.write_page(p, make_page(bytes([p % 250 + 1])))
        else:
            for g in range(array.geometry.num_groups):
                array.full_stripe_write(
                    g, [make_page(bytes([(g * 4 + i) % 250 + 1]))
                        for i in range(4)])
        return array

    def _corrupt(self, array, page):
        addr = array.geometry.data_address(page)
        array.disks[addr.disk].corrupt(addr.slot)

    def test_corrupt_page_read_raises(self, array):
        self._corrupt(array, 5)
        with pytest.raises(LatentSectorError):
            array.read_page(5)

    def test_repair_page_restores(self, array):
        expected = array.peek_page(5)
        self._corrupt(array, 5)
        assert array.repair_page(5) == expected
        assert array.read_page(5) == expected
        assert array.scrub() == []

    def test_healing_read(self, array):
        expected = array.peek_page(5)
        self._corrupt(array, 5)
        assert array.read_page_healing(5) == expected
        # healed durably: a plain read now works
        assert array.read_page(5) == expected

    def test_healing_read_clean_page_no_extra_io(self, array):
        with array.stats.window() as w:
            array.read_page_healing(0)
        assert w.total == 1

    def test_scrub_repair_sweep(self, array):
        expected = {p: array.peek_page(p) for p in (2, 9)}
        for page in expected:
            self._corrupt(array, page)
        repaired = array.scrub_repair()
        assert repaired == [2, 9]
        for page, payload in expected.items():
            assert array.read_page(page) == payload
        assert array.scrub_repair() == []      # second sweep is clean

    def test_hot_spare_pool(self, array):
        assert array.spare_count == 0
        from repro.errors import ArrayDegradedError
        array.fail_disk(0)
        with pytest.raises(ArrayDegradedError):
            array.rebuild_with_spare(0)
        array.provision_spares(2)
        array.rebuild_with_spare(0)
        assert array.spare_count == 1
        assert array.scrub() == []

    def test_spare_validation(self, array):
        with pytest.raises(ValueError):
            array.provision_spares(-1)

    def test_repair_cost_is_reconstruction(self, array):
        self._corrupt(array, 5)
        with array.stats.window() as w:
            array.repair_page(5)
        # N-1 group mates + the parity (twin arrays read both twins to
        # pick the current one)
        expected_reads = array.geometry.group_size - 1 + \
            (2 if array.geometry.twin else 1)
        assert w.reads == expected_reads
        assert w.writes == 1
