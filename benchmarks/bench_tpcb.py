"""X10: TPC-B / DebitCredit — the era's canonical OLTP shape, live.

Runs the same seeded DebitCredit stream under all four record-logging
configurations, asserting money conservation throughout and comparing
page transfers per committed transaction.  The qualitative expectation
from Figures 11/12 carries over: RDA helps, ¬FORCE/ACC helps more.
"""

from repro.db import Database, preset, verify_database
from repro.sim import TPCB

from .conftest import write_table

PRESETS = ("record-force-rda", "record-force-log",
           "record-noforce-rda", "record-noforce-log")


def run_one(name: str, transactions: int = 80, seed: int = 9):
    overrides = dict(group_size=5, num_groups=16, buffer_capacity=20)
    if "noforce" in name:
        overrides["checkpoint_interval"] = 400
    db = Database(preset(name, **overrides))
    workload = TPCB(db, seed=seed)
    workload.setup()
    baseline = db.stats.total
    workload.run(transactions)
    assert workload.conserved(), workload.totals()
    assert verify_database(db) == []
    return (db.stats.total - baseline) / workload.committed


def test_tpcb_cost_per_transaction(benchmark, results_dir):
    def campaign():
        return {name: run_one(name) for name in PRESETS}

    costs = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = ["X10: TPC-B page transfers per committed transaction",
             f"{'configuration':>22} | {'transfers/txn':>13}"]
    for name in PRESETS:
        lines.append(f"{name:>22} | {costs[name]:13.1f}")
    write_table(results_dir, "tpcb", "\n".join(lines))

    assert costs["record-noforce-rda"] <= costs["record-noforce-log"]
    assert costs["record-noforce-rda"] < costs["record-force-rda"]
    benchmark.extra_info["costs"] = {k: round(v, 1) for k, v in costs.items()}


def test_tpcb_with_crashes(benchmark):
    """Conservation under periodic crashes, timed end to end."""

    def campaign():
        db = Database(preset("record-noforce-rda", group_size=5,
                             num_groups=16, buffer_capacity=20,
                             checkpoint_interval=300))
        workload = TPCB(db, seed=13)
        workload.setup()
        report = workload.run(60, crash_every=20)
        assert report["crashes"] == 3
        assert workload.conserved()
        return report

    report = benchmark.pedantic(campaign, rounds=1, iterations=1)
    benchmark.extra_info.update(report)
