"""Driver corner paths: stall breaking and end-of-script fates.

These exercise :meth:`Simulator._break_stall` (every live transaction
parked behind a suspended lock holder) and both `_finish` outcomes —
the voluntary abort draw, and the ``must_commit`` pin that overrides
it after a media failure adopted the working twin.
"""

from repro.db import Database, preset
from repro.sim import Simulator, WorkloadSpec
from repro.sim.simulator import _LiveTxn
from repro.sim.workload import Access, TransactionScript
from repro.storage import make_page


def make_db(name="page-noforce-rda"):
    return Database(preset(name, group_size=5, num_groups=12,
                           buffer_capacity=16))


class ScriptedGenerator:
    """Stand-in for WorkloadGenerator: hands out canned scripts."""

    def __init__(self, scripts, payload=b"scripted"):
        self.scripts = list(scripts)
        self.payload = make_page(payload)

    def next_script(self, buffered_pages=()):
        return self.scripts.pop(0)

    def payload_for(self, page, version):
        return self.payload


def hot_page_script(page=0):
    return TransactionScript(accesses=[Access(page=page, update=True)],
                             is_update=True, wants_abort=False)


class TestBreakStall:
    def test_all_waiters_starved_behind_external_holder(self):
        db = make_db()
        # an out-of-band transaction takes X on page 0 and never moves
        holder = db.begin()
        db.write_page(holder, 0, make_page(b"held"))
        simulator = Simulator(db, WorkloadSpec(concurrency=3,
                                               pages_per_txn=1), seed=0)
        simulator.generator = ScriptedGenerator(
            [hot_page_script() for _ in range(3)])
        report = simulator.run(3)
        # every driven transaction stalled on page 0 and was broken
        assert report.aborted == 3
        assert report.deadlocks == 3
        assert report.committed == 0
        # the external holder is untouched and can still finish
        db.commit(holder)

    def test_break_stall_removes_youngest(self):
        db = make_db()
        holder = db.begin()
        db.write_page(holder, 0, make_page(b"held"))
        simulator = Simulator(db, WorkloadSpec(concurrency=2,
                                               pages_per_txn=1), seed=0)
        simulator.generator = ScriptedGenerator(
            [hot_page_script() for _ in range(2)])
        simulator._fill_slots(2)
        assert not simulator._step_round()      # both now waiting
        oldest, youngest = simulator._live
        simulator._break_stall()
        assert simulator._live == [oldest]
        assert db.txns.get(youngest.txn_id).state.value == "aborted"


class TestFinishFates:
    def test_wants_abort_rolls_back(self):
        db = make_db()
        simulator = Simulator(db, WorkloadSpec(concurrency=1,
                                               pages_per_txn=1), seed=0)
        simulator.generator = ScriptedGenerator([TransactionScript(
            accesses=[Access(page=0, update=True)],
            is_update=True, wants_abort=True)])
        report = simulator.run(1)
        assert report.aborted == 1
        assert report.committed == 0
        # the write was rolled back
        reader = db.begin()
        assert db.read_page(reader, 0) != simulator.generator.payload

    def test_must_commit_overrides_abort_draw(self):
        db = make_db()
        simulator = Simulator(db, WorkloadSpec(concurrency=1,
                                               pages_per_txn=1), seed=0)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"pinned"))
        db.txns.get(txn).must_commit = True
        live = _LiveTxn(txn_id=txn, script=TransactionScript(
            accesses=[], is_update=True, wants_abort=True))
        simulator._live.append(live)
        simulator._finish(live)
        assert simulator.report.committed == 1
        assert simulator.report.aborted == 0
        reader = db.begin()
        assert db.read_page(reader, 0) == make_page(b"pinned")
