"""Tests for the exhaustive crash-point fault-injection harness."""

import json

import pytest

from repro.cli import main
from repro.db import Database, preset
from repro.sim import (FaultPlan, FaultSweepReport, Violation,
                       default_fault_workload, record_schedule, run_plan,
                       run_sweep)

SIZES = dict(group_size=4, num_groups=8, buffer_capacity=16)


def factory(name="page-force-rda"):
    return lambda: Database(preset(name, **SIZES))


@pytest.fixture
def ops():
    return default_fault_workload(transactions=2, group_size=4)


class TestSchedule:
    def test_records_every_write(self, ops):
        schedule = record_schedule(factory(), ops)
        assert schedule, "workload produced no writes"
        assert [w.index for w in schedule] == list(range(len(schedule)))
        kinds = {w.kind for w in schedule}
        assert kinds == {"data", "log"}, "both I/O classes must appear"

    def test_recording_is_deterministic(self, ops):
        first = record_schedule(factory(), ops)
        second = record_schedule(factory(), ops)
        assert first == second

    def test_log_devices_have_negative_ids(self, ops):
        schedule = record_schedule(factory(), ops)
        assert all(w.device < 0 for w in schedule if w.kind == "log")
        assert all(w.device >= 0 for w in schedule if w.kind == "data")


class TestFaultPlan:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            FaultPlan(0, mode="gamma-ray")

    def test_clean_crash_before_any_commit_recovers_empty(self, ops):
        outcome = run_plan(factory(), ops, FaultPlan(0, "clean"))
        assert outcome.outcome == "recovered"
        assert outcome.winners == []

    def test_clean_crash_after_everything_keeps_all_commits(self, ops):
        outcome = run_plan(factory(), ops, FaultPlan(10 ** 6, "clean"))
        assert outcome.outcome == "recovered"
        assert outcome.winners == [0, 1]


class TestSweep:
    """The acceptance criterion: every crash point of the 2-transaction
    workload, plus a torn and a latent variant of each, recovers to the
    committed-state oracle."""

    @pytest.mark.parametrize("name", ["page-force-rda", "page-noforce-rda"])
    def test_rda_sweep_all_recovered(self, name, ops):
        report = run_sweep(factory(name), ops)
        assert len(report.results) == 3 * len(report.schedule)
        assert report.clean, [str(v) for v in report.violations]
        assert report.counts["recovered"] == len(report.results)

    @pytest.mark.parametrize("name", ["page-force-log", "page-noforce-log"])
    def test_wal_baseline_sweep_clean(self, name, ops):
        """Regression for the RAID write hole: a crash between a
        small-write's data and parity transfers must be resynced at
        restart, not left as silent parity corruption."""
        report = run_sweep(factory(name), ops)
        assert report.clean, [str(v) for v in report.violations]

    def test_report_json_round_trip(self, ops):
        report = run_sweep(factory(), ops, modes=("clean",))
        data = json.loads(report.to_json())
        assert data["clean"] is True
        assert data["write_count"] == len(report.schedule)
        assert len(data["runs"]) == len(report.schedule)
        assert data["counts"]["recovered"] == len(report.schedule)
        assert {run["mode"] for run in data["runs"]} == {"clean"}

    def test_sweep_rejects_unknown_mode(self, ops):
        with pytest.raises(ValueError):
            run_sweep(factory(), ops, modes=("clean", "bogus"))

    def test_tracer_gets_one_event_per_schedule(self, ops):
        from repro.obs.tracer import RingBufferSink, Tracer

        sink = RingBufferSink()
        report = run_sweep(factory(), ops, modes=("clean",),
                           tracer=Tracer(sink))
        events = [e for e in sink.events()
                  if e["name"] == "faultplan.crash_point"]
        assert len(events) == len(report.results)
        assert all(e["attrs"]["outcome"] == "recovered" for e in events)


class TestViolationTuples:
    def test_fields_and_str(self):
        violation = Violation("durability", "transaction 1 vanished")
        assert violation.kind == "durability"
        assert violation.detail == "transaction 1 vanished"
        assert str(violation) == "durability: transaction 1 vanished"

    def test_report_counts_by_kind(self):
        report = FaultSweepReport()
        assert report.clean
        assert report.violations_by_kind() == {}


class TestCli:
    def test_fault_sweep_smoke(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        rc = main(["simulate", "--fault-sweep", "--fault-transactions", "2",
                   "--group-size", "4", "--num-groups", "8", "--buffer", "16",
                   "--fault-modes", "clean", "--fault-report", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["clean"] is True
        assert "0 violations" in capsys.readouterr().out

    def test_fault_sweep_runs_record_mode(self, capsys):
        # record-mode sweeps used to be refused; since the REDO-only PR
        # the record fault workload (with its seeding setup) unlocks
        # them at K=1
        rc = main(["simulate", "--fault-sweep",
                   "--preset", "record-force-rda"])
        assert rc == 0
        assert "0 violations" in capsys.readouterr().out
