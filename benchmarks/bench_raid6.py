"""X11: redundancy tiers — RAID-5, twin parity (RDA), RAID-6.

Same storage substrate, three redundancy levels.  The write cost /
fault tolerance / storage trade-off, measured:

* RAID-5: 4-transfer small write, survives 1 failure, 1/(N+1) overhead;
* twin parity: same write cost + transaction undo, survives 1 failure,
  2/(N+2) overhead;
* RAID-6: 6-transfer small write, survives ANY 2 failures, 2/(N+2)
  overhead — the same storage price as RDA's twins, spent on fault
  tolerance instead of undo.
"""

from repro.model.reliability import (PAPER_DISK_MTTF_HOURS,
                                     raid5_farm_mttdl, raid6_farm_mttdl)
from repro.storage import (ParityHeader, TwinState, TwinUpdate, make_page,
                           make_raid5, make_raid6, make_twin_raid5)

from .conftest import write_table

N, GROUPS = 8, 16


def write_cost(array, kind):
    array.stats.reset()
    with array.stats.window() as window:
        for i in range(20):
            page = i % array.num_data_pages
            payload = make_page(i + 1)
            if kind == "twin":
                header = ParityHeader(timestamp=array.next_timestamp(),
                                      state=TwinState.COMMITTED)
                array.small_write(page, payload, [TwinUpdate(0, 0, header)])
            else:
                array.write_page(page, payload)
    return window.total / 20


def test_redundancy_tiers(benchmark, results_dir):
    def campaign():
        tiers = {}
        raid5 = make_raid5(N, GROUPS)
        twin = make_twin_raid5(N, GROUPS)
        for g in range(GROUPS):
            twin.full_stripe_write(
                g, [make_page(bytes([g + 1, i])) for i in range(N)])
        raid6 = make_raid6(N, GROUPS)
        tiers["raid5"] = (write_cost(raid5, "single"), 1, 1 / (N + 1))
        tiers["twin-parity"] = (write_cost(twin, "twin"), 1, 2 / (N + 2))
        tiers["raid6"] = (write_cost(raid6, "single"), 2, 2 / (N + 2))
        return tiers

    tiers = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = ["X11: redundancy tiers (N=8)",
             f"{'tier':>12} | {'transfers/write':>15} | "
             f"{'failures survived':>17} | {'overhead':>8}"]
    for tier, (cost, survives, overhead) in tiers.items():
        lines.append(f"{tier:>12} | {cost:15.1f} | {survives:17d} "
                     f"| {overhead:8.1%}")
    write_table(results_dir, "raid6_tiers", "\n".join(lines))

    assert tiers["raid5"][0] == tiers["twin-parity"][0] == 4.0
    assert tiers["raid6"][0] == 6.0
    benchmark.extra_info["tiers"] = {
        k: {"cost": v[0], "overhead": round(v[2], 3)}
        for k, v in tiers.items()}


def test_raid6_survives_double_failure_end_to_end(benchmark):
    def campaign():
        array = make_raid6(N, GROUPS)
        expected = {}
        for page in range(0, array.num_data_pages, 3):
            payload = make_page(page % 250 + 1)
            array.write_page(page, payload)
            expected[page] = payload
        array.fail_disk(0)
        array.fail_disk(1)
        for page, payload in expected.items():
            assert array.read_page(page) == payload
        array.rebuild_disk(0)
        array.rebuild_disk(1)
        return array.scrub()

    bad = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert bad == []


def test_raid6_reliability_tier(benchmark):
    def evaluate():
        raid5 = raid5_farm_mttdl(PAPER_DISK_MTTF_HOURS, N + 1, 18, mttr=24)
        raid6 = raid6_farm_mttdl(PAPER_DISK_MTTF_HOURS, N + 2, 18, mttr=24)
        return raid5, raid6

    raid5, raid6 = benchmark(evaluate)
    assert raid6 > 100 * raid5
    benchmark.extra_info["raid5_mttdl_days"] = round(raid5 / 24)
    benchmark.extra_info["raid6_mttdl_days"] = round(raid6 / 24)
