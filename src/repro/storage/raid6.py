"""RAID-6: double parity, surviving any two simultaneous failures.

An extension beyond the paper (which stops at single parity ± a twin):
each group of N data pages carries a P page (XOR) and a Q page
(Reed-Solomon over GF(2^8)), rotated like RAID-5.  Small writes update
data, P and Q (six transfers; five with the old data buffered); any two
lost devices in a group are recoverable.

This tier slots into the reliability story of `repro.model.reliability`:
it trades two pages per group for an MTTDL another factor of
~MTTF/MTTR above RAID-5.  RDA-style twin parity is orthogonal — this
module is redundancy only, a substrate for the comparison benches.
"""

from __future__ import annotations

from ..errors import UnrecoverableDataError
from . import kernels as _kernels
from .array import DiskArray
from .geometry import Geometry, Placement
from .gf256 import (GEN_POWERS, gf_div, page_mul, page_xor, q_parity,
                    solve_two_erasures)
from .iostats import IOStats
from .page import PAGE_SIZE, xor_pages


def _gen_coeff(index: int) -> int:
    """``g^index`` (g = 2) from the precomputed power table — the
    Reed-Solomon weight of group member ``index``, cached instead of
    recomputed on every small write, degraded read, and recovery call."""
    return GEN_POWERS[index % 255]


def raid6_geometry(group_size: int, num_groups: int) -> Geometry:
    """Geometry with two parity slots per group (reusing the twin
    layout: slot 0 = P, slot 1 = Q, on distinct disks)."""
    return Geometry(group_size, num_groups, twin=True,
                    placement=Placement.STRIPED)


class Raid6Array(DiskArray):
    """Double-parity array: P = XOR, Q = Σ g^i·D_i."""

    def __init__(self, geometry: Geometry, stats: IOStats | None = None,
                 tracer=None, metrics=None) -> None:
        if not geometry.twin:
            raise ValueError("RAID-6 needs the two-parity-slot geometry")
        super().__init__(geometry, stats, tracer=tracer, metrics=metrics)

    # -- parity addresses: slot 0 = P, slot 1 = Q ------------------------------------

    def _p_addr(self, group: int):
        return self.geometry.parity_addresses(group)[0]

    def _q_addr(self, group: int):
        return self.geometry.parity_addresses(group)[1]

    # -- writes ------------------------------------------------------------------------

    def write_page(self, page: int, new_data: bytes,
                   old_data: bytes | None = None) -> None:
        """Small write: update data, P, and Q (6 transfers; 5 with the
        old data supplied)."""
        if len(new_data) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        if not self.tracer.enabled:
            self._write_page_inner(page, new_data, old_data)
            return
        with self.stats.window() as window:
            self._write_page_inner(page, new_data, old_data)
        self.tracer.emit_costed("array.small_write", window, page=page,
                                mode="pq", buffered=old_data is not None)
        if self._xfer_hist is not None:
            self._xfer_hist.observe(window.total)

    def _write_page_inner(self, page: int, new_data: bytes,
                          old_data: bytes | None) -> None:
        addr = self.geometry.data_address(page)
        group = self.geometry.group_of(page)
        index = self.geometry.index_in_group(page)
        old = self.disks[addr.disk].read(addr.slot) if old_data is None \
            else old_data
        delta = page_xor(old, new_data)
        p_addr, q_addr = self._p_addr(group), self._q_addr(group)
        old_p = self._read_at(p_addr)
        old_q = self._read_at(q_addr)
        self._write_at(addr, new_data)
        self._write_at(p_addr, page_xor(old_p, delta))
        self._write_at(q_addr,
                       page_xor(old_q, page_mul(_gen_coeff(index), delta)))

    def full_stripe_write(self, group: int, payloads: list) -> None:
        """Write a whole group plus fresh P and Q (N + 2 transfers)."""
        pages = self.geometry.group_pages(group)
        if len(payloads) != len(pages):
            raise ValueError(
                f"group {group} has {len(pages)} data pages, "
                f"got {len(payloads)}")
        for page, payload in zip(pages, payloads):
            self._write_at(self.geometry.data_address(page), payload)
        self._write_at(self._p_addr(group), xor_pages(*payloads))
        self._write_at(self._q_addr(group), q_parity(list(payloads)))

    # -- reconstruction ------------------------------------------------------------------

    def _group_parity_for_reconstruction(self, group: int) -> bytes:
        addr = self._p_addr(group)
        if self.disks[addr.disk].failed:
            raise UnrecoverableDataError(
                f"group {group}: P parity unavailable for single-erasure "
                "reconstruction")
        return self._read_at(addr)

    def read_page(self, page: int) -> bytes:
        """Read with up-to-two-erasure reconstruction."""
        addr = self.geometry.data_address(page)
        if not self.disks[addr.disk].failed:
            return self._read_at(addr)
        group = self.geometry.group_of(page)
        failed = self._failed_members(group)
        if len(failed) == 1:
            try:
                return self._reconstruct_data_page(page)
            except UnrecoverableDataError:
                pass   # P also failed: fall through to the Q path
        return self._reconstruct_two(page, group, failed)

    def _failed_members(self, group: int) -> list:
        """Indices of failed data members of ``group``."""
        out = []
        for index, member in enumerate(self.geometry.group_pages(group)):
            member_addr = self.geometry.data_address(member)
            if self.disks[member_addr.disk].failed:
                out.append(index)
        return out

    def _reconstruct_two(self, page: int, group: int, failed: list) -> bytes:
        """Recover ``page`` when up to two of {data pages, P, Q} in its
        group are lost."""
        if len(failed) > 2:
            raise UnrecoverableDataError(
                f"group {group}: {len(failed)} data members lost; RAID-6 "
                "tolerates two failures")
        pages = self.geometry.group_pages(group)
        target_index = self.geometry.index_in_group(page)
        p_ok = not self.disks[self._p_addr(group).disk].failed
        q_ok = not self.disks[self._q_addr(group).disk].failed

        survivors = {}
        for index, member in enumerate(pages):
            if index in failed:
                continue
            survivors[index] = self._read_at(self.geometry.data_address(member))

        kernel = _kernels.get_kernel()
        if len(failed) == 1:
            index = failed[0]
            if p_ok:
                # one batched reduction over P and every survivor
                return kernel.xor_accumulate(
                    [self._read_at(self._p_addr(group)),
                     *survivors.values()], PAGE_SIZE)
            if not q_ok:
                raise UnrecoverableDataError(
                    f"group {group}: data, P and Q all unavailable")
            acc = kernel.gf_scale_accumulate(
                [(1, self._read_at(self._q_addr(group)))]
                + [(_gen_coeff(other_index), payload)
                   for other_index, payload in survivors.items()], PAGE_SIZE)
            return page_mul(gf_div(1, _gen_coeff(index)), acc)

        # two data members lost: need both P and Q
        if not (p_ok and q_ok):
            raise UnrecoverableDataError(
                f"group {group}: two data members plus a parity device lost")
        p_star = kernel.xor_accumulate(
            [self._read_at(self._p_addr(group)), *survivors.values()],
            PAGE_SIZE)
        q_star = kernel.gf_scale_accumulate(
            [(1, self._read_at(self._q_addr(group)))]
            + [(_gen_coeff(index), payload)
               for index, payload in survivors.items()], PAGE_SIZE)
        d_a, d_b = solve_two_erasures(failed[0], failed[1], p_star, q_star)
        return d_a if target_index == failed[0] else d_b

    # -- rebuild --------------------------------------------------------------------------

    def rebuild_disk(self, disk_id: int) -> int:
        """Replace and rebuild one disk (another may still be failed).

        Every payload — data *and* parity — is computed while the
        replacement is still marked failed: a blank-but-healthy disk
        would otherwise serve zeros (as data, or worse, as trusted
        parity) to its own reconstruction reads.
        """
        self._check_disk(disk_id)
        with self.tracer.span("array.rebuild", stats=self.stats,
                              disk=disk_id) as span:
            disk = self.disks[disk_id]
            disk.replace()
            disk.fail()
            payloads = {slot: self.read_page(page)
                        for slot, page in self.geometry.pages_on_disk(disk_id)}
            parity_payloads = {}
            for group in self.geometry.groups_with_parity_on(disk_id):
                data = [self.read_page(p)
                        for p in self.geometry.group_pages(group)]
                p_addr, q_addr = self._p_addr(group), self._q_addr(group)
                if p_addr.disk == disk_id:
                    parity_payloads[p_addr.slot] = xor_pages(*data)
                if q_addr.disk == disk_id:
                    parity_payloads[q_addr.slot] = q_parity(data)
            disk.revive()
            rebuilt = 0
            for slot, payload in {**payloads, **parity_payloads}.items():
                disk.write(slot, payload)
                rebuilt += 1
            span.set(slots=rebuilt)
        if self.metrics is not None:
            self.metrics.counter("array.rebuilds").inc()
        return rebuilt

    def rewrite_parity(self, group: int, data: list,
                       disk_id: int | None = None) -> None:
        """Rewrite P (XOR) and/or Q (Reed-Solomon) of ``group`` from its
        data payloads, optionally restricted to the parity on ``disk_id``."""
        p_addr, q_addr = self._p_addr(group), self._q_addr(group)
        if disk_id is None or p_addr.disk == disk_id:
            self.disks[p_addr.disk].write(p_addr.slot, xor_pages(*data))
        if disk_id is None or q_addr.disk == disk_id:
            self.disks[q_addr.disk].write(q_addr.slot, q_parity(list(data)))

    # -- verification ----------------------------------------------------------------------

    def _group_consistent(self, group: int) -> bool:
        data = self.group_data_payloads(group)
        p_addr, q_addr = self._p_addr(group), self._q_addr(group)
        p = self.disks[p_addr.disk].peek(p_addr.slot)
        q = self.disks[q_addr.disk].peek(q_addr.slot)
        return p == xor_pages(*data) and q == q_parity(data)


def make_raid6(group_size: int, num_groups: int,
               stats: IOStats | None = None, tracer=None,
               metrics=None) -> Raid6Array:
    """A RAID-6 array of N data pages + P + Q per group."""
    return Raid6Array(raid6_geometry(group_size, num_groups), stats=stats,
                      tracer=tracer, metrics=metrics)
