"""Property tests for the fault-plan engine.

Scripts are random interleavings of page writes, commits, and aborts
from up to three transactions.  Each transaction owns pages in its own
parity groups (disjoint from every other transaction's), so scripts are
conflict-free by construction — the single-threaded replay never hits a
lock wait.  The properties:

1. with no fault injected, the workload leaves a verify-clean database
   whose state matches the committed oracle;
2. a clean crash after *any* write index recovers to the oracle;
3. a torn or latent fault at any write index never produces silent
   corruption — every schedule either recovers or loudly detects the
   damage.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.db import Database, preset  # noqa: E402
from repro.sim import FaultPlan, record_schedule, run_plan  # noqa: E402

GROUP_SIZE = 4
SIZES = dict(group_size=GROUP_SIZE, num_groups=8, buffer_capacity=16)


def make_db():
    return Database(preset("page-force-rda", **SIZES))


@st.composite
def scripts(draw):
    """A conflict-free interleaved workload script."""
    n = draw(st.integers(min_value=1, max_value=3))
    ops = [("begin", t) for t in range(n)]
    pending = []
    for t in range(n):
        # one page per parity group, groups disjoint between transactions
        own = [(t * 2 + j) * GROUP_SIZE
               for j in range(draw(st.integers(min_value=1, max_value=2)))]
        count = draw(st.integers(min_value=1, max_value=4))
        pending.append([
            ("write", t, draw(st.sampled_from(own)), version)
            for version in range(1, count + 1)])
    while any(pending):
        active = [t for t in range(n) if pending[t]]
        t = draw(st.sampled_from(active))
        ops.append(pending[t].pop(0))
    for t in draw(st.permutations(range(n))):
        eot = draw(st.sampled_from(["commit", "commit", "commit", "abort"]))
        ops.append((eot, t))
    return ops


@settings(max_examples=25, deadline=None)
@given(ops=scripts())
def test_any_interleaving_reaches_oracle_without_faults(ops):
    """Running to completion must verify clean and match the oracle —
    run_plan past the last write is exactly that check."""
    outcome = run_plan(make_db, ops, FaultPlan(10 ** 9, "clean"))
    assert outcome.outcome == "recovered", \
        [str(v) for v in outcome.violations]
    committed = [op[1] for op in ops if op[0] == "commit"]
    assert sorted(outcome.winners) == sorted(committed)


@settings(max_examples=25, deadline=None)
@given(ops=scripts(), index=st.integers(min_value=0, max_value=10 ** 6))
def test_clean_crash_at_any_write_recovers_oracle(ops, index):
    schedule = record_schedule(make_db, ops)
    if not schedule:
        return
    plan = FaultPlan(index % len(schedule), "clean")
    outcome = run_plan(make_db, ops, plan)
    assert outcome.outcome == "recovered", \
        (plan, [str(v) for v in outcome.violations])


@settings(max_examples=15, deadline=None)
@given(ops=scripts(), index=st.integers(min_value=0, max_value=10 ** 6),
       mode=st.sampled_from(["torn", "latent"]))
def test_damaged_write_never_corrupts_silently(ops, index, mode):
    schedule = record_schedule(make_db, ops)
    if not schedule:
        return
    plan = FaultPlan(index % len(schedule), mode)
    outcome = run_plan(make_db, ops, plan)
    assert outcome.outcome in ("recovered", "detected"), \
        (plan, [str(v) for v in outcome.violations])
