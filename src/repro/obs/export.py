"""Trace export: JSONL event stream → Chrome trace-event JSON.

The tracer's native format is one JSON object per line (append-only,
crash-safe, diff-friendly).  Perfetto and ``chrome://tracing`` speak the
`trace-event format`__ instead: a ``traceEvents`` array of phase-coded
records with microsecond timestamps.  :func:`export_chrome_trace` maps
between the two:

* span ends (events carrying ``dur_ms``) become complete ``"X"`` events
  — ``ts`` is rewound by the duration, since the tracer stamps span
  *ends*;
* point events become ``"i"`` instants;
* the ``shard`` label becomes the thread id, so a K-sharded run renders
  as K parallel tracks plus track 0 for the unsharded facade;
* reads/writes/transfers and the other attrs ride along in ``args``
  (visible in the Perfetto selection panel);
* cumulative transfer counts are emitted as ``"C"`` counter events so
  the I/O cost of each recovery phase is visible as a slope.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json

from .inspect import load_trace

_TRACK_ATTR = "shard"
_FACADE_TID = 0
_PROCESS_NAME = "repro"


def _display_name(event: dict) -> str:
    """The slice name shown on the timeline; recovery phases get their
    phase baked in so the track reads analysis → redo → undo."""
    name = event.get("name", "?")
    attrs = event.get("attrs") or {}
    if name == "recovery.phase" and "phase" in attrs:
        return f"recovery.{attrs['phase']}"
    return name


def _tid(attrs: dict) -> int:
    shard = attrs.get(_TRACK_ATTR)
    if isinstance(shard, int):
        return shard + 1  # track 0 is the unsharded / facade track
    return _FACADE_TID


def export_chrome_trace(events, counters: bool = True) -> dict:
    """Convert tracer events to a Chrome trace-event document.

    Args:
        events: iterable of tracer event dicts (``load_trace`` output).
        counters: also emit cumulative ``transfers`` counter events.

    Returns:
        ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — dump with
        ``json.dump`` and load in https://ui.perfetto.dev.
    """
    trace: list = []
    tids = set()
    cumulative: dict = {}
    for event in events:
        attrs = event.get("attrs") or {}
        ts_us = float(event.get("ts", 0.0)) * 1e6
        tid = _tid(attrs)
        tids.add(tid)
        args = {k: v for k, v in attrs.items() if k != "dur_ms"}
        dur_ms = attrs.get("dur_ms")
        record = {
            "name": _display_name(event),
            "cat": event.get("name", "?").split(".", 1)[0],
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if dur_ms is not None:
            dur_us = float(dur_ms) * 1e3
            record["ph"] = "X"
            record["ts"] = ts_us - dur_us  # tracer stamps span ends
            record["dur"] = dur_us
        else:
            record["ph"] = "i"
            record["ts"] = ts_us
            record["s"] = "t"
        trace.append(record)
        if counters and attrs.get("transfers"):
            cumulative[tid] = cumulative.get(tid, 0) + attrs["transfers"]
            trace.append({
                "name": "transfers",
                "ph": "C",
                "pid": 1,
                "tid": tid,
                "ts": ts_us,
                "args": {"transfers": cumulative[tid]},
            })
    meta = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": _PROCESS_NAME},
    }]
    for tid in sorted(tids):
        label = "engine" if tid == _FACADE_TID else f"shard {tid - 1}"
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


def export_trace_file(in_path, out_path, counters: bool = True) -> int:
    """Read a JSONL trace, write Chrome trace-event JSON.

    Returns the number of source events converted.
    """
    events = load_trace(in_path)
    document = export_chrome_trace(events, counters=counters)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(events)
