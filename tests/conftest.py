"""Shared test configuration: hypothesis profiles.

The ``ci`` profile (selected via ``HYPOTHESIS_PROFILE=ci``) is
derandomized so CI failures reproduce exactly; ``dev`` is the local
default.  ``soak`` raises the example budget for the nightly tier.
"""

import os

from hypothesis import settings

settings.register_profile("dev", max_examples=100)
settings.register_profile("ci", max_examples=100, derandomize=True,
                          print_blob=True)
settings.register_profile("soak", max_examples=1000)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
