"""X0: the full paper-claims scorecard, in one gate.

Evaluates every quantitative claim the paper makes (as registered in
`repro.model.claims`) and writes the scorecard — the one-file answer to
"did the reproduction work?".
"""

from repro.model.claims import check_all_claims, format_scorecard

from .conftest import write_table


def test_paper_claims_scorecard(benchmark, results_dir):
    claims = benchmark(check_all_claims)
    write_table(results_dir, "claims_scorecard", format_scorecard(claims))
    failures = [c.claim_id for c in claims if not c.holds]
    assert failures == []
    benchmark.extra_info["claims"] = {
        c.claim_id: {"measured": c.measured, "target": c.target,
                     "holds": c.holds}
        for c in claims}
