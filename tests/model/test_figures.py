"""Tests for the figure generators."""

import pytest

from repro.model import (DEFAULT_C_SWEEP, DEFAULT_S_SWEEP, all_figures,
                         figure9, figure10, figure11, figure12, figure13)


class TestFigureStructure:
    @pytest.mark.parametrize("figure_fn", [figure9, figure10, figure11,
                                           figure12])
    def test_throughput_figures_have_four_curves(self, figure_fn):
        figure = figure_fn()
        assert len(figure.curves) == 4          # 2 environments x ±RDA
        for series in figure.curves.values():
            assert len(series) == len(figure.x_values)
            assert all(y > 0 for y in series)

    def test_default_sweep_covers_unit_interval(self):
        assert DEFAULT_C_SWEEP[0] == 0.0
        assert DEFAULT_C_SWEEP[-1] == 0.95

    def test_figure13_single_curve(self):
        figure = figure13()
        assert list(figure.curves) == ["% increase"]
        assert figure.x_values == DEFAULT_S_SWEEP

    def test_custom_sweep(self):
        figure = figure9(sweep=(0.1, 0.5), environments=("high-update",))
        assert figure.x_values == (0.1, 0.5)
        assert len(figure.curves) == 2

    def test_all_figures_ordered(self):
        names = [f.name for f in all_figures()]
        assert names == ["figure9", "figure10", "figure11", "figure12",
                         "figure13"]


class TestFigureContent:
    def test_rda_curve_dominates_in_figure9(self):
        figure = figure9(environments=("high-update",))
        base = figure.curves["high-update ¬RDA"]
        rda = figure.curves["high-update RDA"]
        assert all(r > b for r, b in zip(rda, base))

    def test_rows_align(self):
        figure = figure13(sweep=(5, 45))
        rows = list(figure.rows())
        assert rows[0][0] == 5
        assert rows[1][0] == 45
        assert rows[1][1]["% increase"] > rows[0][1]["% increase"]

    def test_format_table_is_printable(self):
        table = figure13(sweep=(5, 25, 45)).format_table()
        assert "Figure 13" in table
        assert table.count("\n") >= 5

    def test_throughput_monotone_in_communality_high_retrieval(self):
        """More buffer hits -> fewer transfers -> more throughput."""
        figure = figure9(environments=("high-retrieval",))
        series = figure.curves["high-retrieval ¬RDA"]
        assert series == sorted(series)
