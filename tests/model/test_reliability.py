"""Tests for the reliability arithmetic behind the paper's motivation."""

import pytest

from repro.errors import ModelError
from repro.model.reliability import (PAPER_DISK_MTTF_HOURS, farm_mttf,
                                     mirrored_mttdl, paper_motivation_table,
                                     raid5_farm_mttdl, raid5_group_mttdl,
                                     raid6_farm_mttdl, raid6_group_mttdl,
                                     storage_overhead, unprotected_mttdl)


class TestPaperNumbers:
    def test_footnote_mttf(self):
        assert PAPER_DISK_MTTF_HOURS == 30_000

    def test_intro_claim_under_25_days(self):
        """200 disks at 30,000 h MTTF → media failure in < 25 days."""
        hours = farm_mttf(PAPER_DISK_MTTF_HOURS, 200)
        assert hours / 24 < 25
        assert hours / 24 == pytest.approx(6.25)

    def test_redundancy_lifts_mttdl_by_orders_of_magnitude(self):
        base = unprotected_mttdl(PAPER_DISK_MTTF_HOURS, 200)
        raid = raid5_farm_mttdl(PAPER_DISK_MTTF_HOURS, 11, 18, mttr=24)
        assert raid > 100 * base


class TestFormulas:
    def test_farm_scales_inversely(self):
        assert farm_mttf(30_000, 10) == 3_000
        assert farm_mttf(30_000, 100) == 300

    def test_mirroring(self):
        single_pair = mirrored_mttdl(30_000, 1, mttr=24)
        assert single_pair == pytest.approx(30_000 ** 2 / 48)
        assert mirrored_mttdl(30_000, 10, 24) == pytest.approx(single_pair / 10)

    def test_raid5_group(self):
        value = raid5_group_mttdl(30_000, 11, 24)
        assert value == pytest.approx(30_000 ** 2 / (11 * 10 * 24))

    def test_shorter_repair_window_helps(self):
        slow = raid5_group_mttdl(30_000, 11, mttr=72)
        fast = raid5_group_mttdl(30_000, 11, mttr=8)
        assert fast > slow

    def test_raid6_formula(self):
        value = raid6_group_mttdl(30_000, 10, 24)
        assert value == pytest.approx(30_000 ** 3 / (10 * 9 * 8 * 24 ** 2))

    def test_raid6_dwarfs_raid5(self):
        raid5 = raid5_farm_mttdl(30_000, 11, 18, 24)
        raid6 = raid6_farm_mttdl(30_000, 12, 18, 24)
        assert raid6 > 100 * raid5

    def test_raid6_same_overhead_as_twin_parity(self):
        assert storage_overhead("raid6", 10) == \
            storage_overhead("twin-parity", 10)

    def test_validation(self):
        with pytest.raises(ModelError):
            farm_mttf(-1, 10)
        with pytest.raises(ModelError):
            raid5_group_mttdl(30_000, 1, 24)
        with pytest.raises(ModelError):
            mirrored_mttdl(30_000, 0, 24)
        with pytest.raises(ModelError):
            raid6_group_mttdl(30_000, 2, 24)


class TestOverheads:
    def test_values(self):
        assert storage_overhead("none") == 0.0
        assert storage_overhead("mirroring") == 0.5
        assert storage_overhead("raid5", 10) == pytest.approx(1 / 11)
        assert storage_overhead("twin-parity", 10) == pytest.approx(2 / 12)

    def test_twin_parity_far_cheaper_than_mirroring(self):
        """The paper's storage claim: ~(100/N)% extra vs 100%."""
        assert storage_overhead("twin-parity", 10) < \
            storage_overhead("mirroring") / 2

    def test_unknown_scheme(self):
        with pytest.raises(ModelError):
            storage_overhead("raid7")


class TestMotivationTable:
    def test_four_rows_ordered(self):
        table = paper_motivation_table()
        assert [row[0] for row in table] == [
            "unprotected", "mirroring", "raid5", "twin-parity (RDA)"]

    def test_every_redundant_scheme_beats_unprotected(self):
        table = paper_motivation_table()
        base = table[0][1]
        for _, mttdl, _ in table[1:]:
            assert mttdl > base

    def test_twin_parity_overhead_near_raid5(self):
        table = {row[0]: row for row in paper_motivation_table()}
        assert table["twin-parity (RDA)"][2] < 0.2
        assert table["mirroring"][2] == 0.5
