"""Unit and property tests for array geometries (paper Figures 1, 2, 4, 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.storage.geometry import (Geometry, Placement,
                                    parity_striping_geometry, raid5_geometry)

geometries = st.builds(
    Geometry,
    group_size=st.integers(2, 8),
    num_groups=st.integers(1, 20),
    twin=st.booleans(),
    placement=st.sampled_from(list(Placement)),
)


class TestConstruction:
    def test_disk_counts(self):
        assert raid5_geometry(4, 10).num_disks == 5
        assert raid5_geometry(4, 10, twin=True).num_disks == 6
        assert parity_striping_geometry(4, 10).num_disks == 5

    def test_data_page_count(self):
        geo = raid5_geometry(4, 10)
        assert geo.num_data_pages == 40

    def test_rejects_tiny_group(self):
        with pytest.raises(ValueError):
            Geometry(1, 10)

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            Geometry(4, 0)

    def test_out_of_range_queries(self):
        geo = raid5_geometry(4, 4)
        with pytest.raises(AddressError):
            geo.data_address(16)
        with pytest.raises(AddressError):
            geo.group_pages(4)


class TestRotation:
    def test_raid5_parity_rotates(self):
        geo = raid5_geometry(4, 10)
        disks = [geo.parity_addresses(g)[0].disk for g in range(5)]
        assert disks == [0, 1, 2, 3, 4]

    def test_twin_parity_on_adjacent_disks(self):
        geo = raid5_geometry(4, 12, twin=True)
        for g in range(12):
            a, b = geo.parity_addresses(g)
            assert a.disk != b.disk
            assert b.disk == (a.disk + 1) % geo.num_disks

    def test_parity_and_data_disks_disjoint(self):
        geo = raid5_geometry(4, 12, twin=True)
        for g in range(12):
            parity_disks = {a.disk for a in geo.parity_addresses(g)}
            assert parity_disks.isdisjoint(set(geo.data_disks(g)))


class TestPlacementDisciplines:
    def test_striped_consecutive_pages_share_group(self):
        geo = raid5_geometry(4, 10)
        assert [geo.group_of(p) for p in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_striped_consecutive_pages_on_distinct_disks(self):
        geo = raid5_geometry(4, 10)
        disks = [geo.data_address(p).disk for p in range(4)]
        assert len(set(disks)) == 4

    def test_sequential_run_stays_on_one_disk(self):
        """Parity striping's defining property (Gray et al.)."""
        geo = parity_striping_geometry(4, 10)
        runs_per_disk = {}
        for p in range(geo.num_data_pages):
            runs_per_disk.setdefault(geo.data_address(p).disk, []).append(p)
        for pages in runs_per_disk.values():
            assert pages == list(range(pages[0], pages[0] + len(pages)))

    def test_sequential_spreads_over_all_disks(self):
        geo = parity_striping_geometry(4, 10)
        disks = {geo.data_address(p).disk for p in range(geo.num_data_pages)}
        assert disks == set(range(geo.num_disks))


class TestMappingInvariants:
    @given(geometries)
    def test_addresses_are_bijective(self, geo):
        seen = set()
        for p in range(geo.num_data_pages):
            addr = geo.data_address(p)
            key = (addr.disk, addr.slot)
            assert key not in seen
            seen.add(key)
            assert geo.page_at(addr) == p

    @given(geometries)
    def test_groups_partition_pages(self, geo):
        all_pages = []
        for g in range(geo.num_groups):
            members = geo.group_pages(g)
            assert len(members) == geo.group_size
            for p in members:
                assert geo.group_of(p) == g
            all_pages.extend(members)
        assert sorted(all_pages) == list(range(geo.num_data_pages))

    @given(geometries)
    def test_group_members_on_distinct_data_disks(self, geo):
        for g in range(geo.num_groups):
            disks = [geo.data_address(p).disk for p in geo.group_pages(g)]
            assert len(set(disks)) == geo.group_size
            parity_disks = {a.disk for a in geo.parity_addresses(g)}
            assert parity_disks.isdisjoint(set(disks))

    @given(geometries)
    def test_index_in_group_consistent(self, geo):
        for g in range(geo.num_groups):
            for j, p in enumerate(geo.group_pages(g)):
                assert geo.index_in_group(p) == j

    @given(geometries)
    def test_pages_on_disk_covers_everything(self, geo):
        total = 0
        for d in range(geo.num_disks):
            for slot, page in geo.pages_on_disk(d):
                assert geo.data_address(page) == type(geo.data_address(page))(d, slot)
                total += 1
        assert total == geo.num_data_pages

    @given(geometries)
    def test_parity_slot_count_on_disks(self, geo):
        per_disk = [len(geo.groups_with_parity_on(d)) for d in range(geo.num_disks)]
        expected_total = geo.num_groups * (2 if geo.twin else 1)
        assert sum(per_disk) == expected_total
        # rotation keeps the spread within one of perfectly even
        assert max(per_disk) - min(per_disk) <= (2 if geo.twin else 1)


class TestStorageOverhead:
    def test_single_parity(self):
        geo = raid5_geometry(10, 50)
        assert geo.storage_overhead() == pytest.approx(1 / 11)

    def test_twin_parity_matches_paper_claim(self):
        """Paper: RDA's extra storage is about (100/N)% of the database —
        one extra parity page per N data pages."""
        geo = raid5_geometry(10, 50, twin=True)
        assert geo.storage_overhead() == pytest.approx(2 / 12)
        extra_vs_single = (2 - 1) * geo.num_groups / geo.num_data_pages
        assert extra_vs_single == pytest.approx(1 / 10)
