"""Seed-determinism regression: the same (spec, seed) pair must
reproduce the run bit for bit — identical SimulationReport and an
identical recorded history — across all five recovery classes.

Any nondeterminism (dict-order iteration, id()-keyed structures,
hidden global RNG use) breaks the faultplan sweeps and makes
conformance verdicts unreproducible, so this is a tier-1 tripwire.
"""

import dataclasses
import json

import pytest

from repro.check import HistoryRecorder
from repro.db import Database, preset
from repro.sim import Simulator, WorkloadSpec

RECOVERY_CLASSES = [
    "page-force-rda",
    "page-noforce-rda",
    "record-force-log",
    "record-noforce-log",
    "page-noforce-redo",
    "record-noforce-rda-redo",
]

SPEC = WorkloadSpec(concurrency=4, pages_per_txn=5,
                    update_txn_fraction=0.8, update_probability=0.9,
                    abort_probability=0.05, communality=0.6)

OVERRIDES = dict(group_size=5, num_groups=12, buffer_capacity=16)


def one_run(name, seed, crash_every=None, batched=True):
    recorder = HistoryRecorder()
    db = Database(preset(name, batched=batched, **OVERRIDES),
                  history=recorder)
    simulator = Simulator(db, SPEC, seed=seed)
    if db.config.record_logging:
        simulator.seed_records()
    report = simulator.run(30, crash_every=crash_every)
    report_json = json.dumps(dataclasses.asdict(report), sort_keys=True)
    return report_json, recorder.history.to_json()


@pytest.mark.parametrize("name", RECOVERY_CLASSES)
def test_same_seed_same_run(name):
    first = one_run(name, seed=11)
    second = one_run(name, seed=11)
    assert first[0] == second[0], "SimulationReport diverged"
    assert first[1] == second[1], "recorded history diverged"


@pytest.mark.parametrize("name", RECOVERY_CLASSES)
def test_same_seed_same_run_with_crashes(name):
    first = one_run(name, seed=11, crash_every=7)
    second = one_run(name, seed=11, crash_every=7)
    assert first == second


@pytest.mark.parametrize("name", RECOVERY_CLASSES)
def test_batched_hot_path_matches_legacy(name):
    """The batched engine (commit-window write-back, pooled slabs,
    coalesced dispatch) is an *encoding* of the legacy per-page path,
    not a semantic change: same seed, batched on vs off, must produce a
    byte-identical SimulationReport and recorded history."""
    batched = one_run(name, seed=11, batched=True)
    legacy = one_run(name, seed=11, batched=False)
    assert batched[0] == legacy[0], "SimulationReport diverged"
    assert batched[1] == legacy[1], "recorded history diverged"


@pytest.mark.parametrize("name", RECOVERY_CLASSES)
def test_batched_hot_path_matches_legacy_with_crashes(name):
    """Same equivalence through the crash/recover cycle — recovery
    reads the on-disk state the batched path wrote, so any divergence
    in write ordering or parity placement surfaces here."""
    batched = one_run(name, seed=11, crash_every=7, batched=True)
    legacy = one_run(name, seed=11, crash_every=7, batched=False)
    assert batched == legacy


def test_different_seeds_differ():
    # sanity: the comparison above is not vacuous
    a = one_run("page-force-rda", seed=1)
    b = one_run("page-force-rda", seed=2)
    assert a[1] != b[1]
