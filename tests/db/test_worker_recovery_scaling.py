"""Parallel restart recovery: per-shard fan-out, observed and timed.

Two halves.  The tier-1 half checks the *accounting*: a worker-mode
restart is K concurrent shard recoveries whose tracer events (stamped
``shard=i`` by ``Tracer.ingest``) must roll up into one facade-level
crash-to-ready cycle, with the per-shard phase rows summing exactly to
the merged phase totals.  The ``scaling``-marked half checks the
*wall clock*: on a multi-core box the fanned-out K=4 worker restart
must beat the in-process serial K=4 restart on the same fault plan.
That comparison is meaningless on a single core (the processes just
time-slice), so it lives outside tier-1 and skips itself there.
"""

import os
import time

import pytest

from repro.db import ShardedDatabase, WorkerShardedDatabase, preset
from repro.obs import RecoveryProfile, RingBufferSink, Tracer
from repro.storage.page import make_page

OVERRIDES = dict(group_size=5, num_groups=16, buffer_capacity=16)


def crash_with_work(db, pages):
    """Commit ``pages`` writes, leave a loser over the same pages, crash.
    Every shard ends up with redo work (committed log records) and undo
    work (stolen loser pages) to chew through at restart."""
    winner = db.begin()
    for page in range(pages):
        db.write_page(winner, page, make_page(b"w%d" % (page % 10)))
    db.commit(winner)
    loser = db.begin()
    for page in range(pages):
        db.write_page(loser, page, make_page(b"doomed"))
    db.crash()
    return winner, loser


def test_worker_recovery_phase_rows_sum_across_shards():
    tracer = Tracer(RingBufferSink())
    profile = RecoveryProfile().attach(tracer)
    config = preset("page-noforce-rda", **OVERRIDES)
    with WorkerShardedDatabase(config, shards=4, tracer=tracer) as db:
        # enough pages that every shard steals dirty loser pages (the
        # per-shard buffer is 4 frames), so undo work is guaranteed
        winner, loser = crash_with_work(db, pages=32)
        stats = db.recover()
        assert winner in stats["winners"]
        assert loser in stats["losers"]
    doc = profile.to_dict()
    # one facade-level cycle: the four concurrent shard restarts must
    # not each close an MTTR interval of their own
    assert doc["crashes"] == 1
    assert set(doc["shards"]) == {"0", "1", "2", "3"}
    assert doc["phases"], "no recovery phases observed"
    for phase, total in doc["phases"].items():
        rows = [per_shard[phase] for per_shard in doc["shards"].values()
                if phase in per_shard]
        assert rows, f"phase {phase} has no per-shard rows"
        assert sum(row["count"] for row in rows) == total["count"]
        assert sum(row["transfers"] for row in rows) == total["transfers"]
        assert (sum(row["log_transfers"] for row in rows)
                == total["log_transfers"])


def _timed_restart(db, pages):
    crash_with_work(db, pages)
    t0 = time.perf_counter()
    stats = db.recover()
    return time.perf_counter() - t0, stats


@pytest.mark.scaling
def test_k4_worker_restart_beats_serial_restart():
    if (os.cpu_count() or 1) < 2:
        pytest.skip("parallel restart needs >1 CPU core to win wall-clock")
    config = preset("page-noforce-rda", group_size=5, num_groups=64,
                    buffer_capacity=64)
    pages = 160
    serial_walls, worker_walls = [], []
    for _ in range(3):
        db = ShardedDatabase(config, shards=4)
        wall, serial_stats = _timed_restart(db, pages)
        serial_walls.append(wall)
        with WorkerShardedDatabase(config, shards=4) as db:
            wall, worker_stats = _timed_restart(db, pages)
        worker_walls.append(wall)
    # same fault plan, same recovery outcome ...
    assert worker_stats["winners"] == serial_stats["winners"]
    assert worker_stats["losers"] == serial_stats["losers"]
    assert (worker_stats["page_transfers"]
            == serial_stats["page_transfers"])
    # ... but the fanned-out restart finishes first
    assert min(worker_walls) < min(serial_walls), (
        f"worker restart {min(worker_walls):.4f}s not faster than "
        f"serial {min(serial_walls):.4f}s")
