"""Tests for the machine-checkable claims registry."""

from repro.model.claims import Claim, check_all_claims, format_scorecard


class TestRegistry:
    def test_every_claim_holds(self):
        failures = [c for c in check_all_claims() if not c.holds]
        assert failures == [], [
            f"{c.claim_id}: measured {c.measured} vs {c.target}"
            for c in failures]

    def test_claim_count_and_ids_unique(self):
        claims = check_all_claims()
        assert len(claims) >= 12
        ids = [c.claim_id for c in claims]
        assert len(set(ids)) == len(ids)

    def test_each_claim_cites_a_source(self):
        for claim in check_all_claims():
            assert claim.source
            assert claim.statement

    def test_scorecard_format(self):
        text = format_scorecard()
        assert "PASS" in text
        assert "claims reproduced" in text
        assert "FAIL" not in text

    def test_scorecard_accepts_prebuilt_claims(self):
        fake = [Claim("x", "s", "st", 1.0, 1.0, False)]
        text = format_scorecard(fake)
        assert "FAIL" in text
        assert "0/1 claims reproduced" in text
