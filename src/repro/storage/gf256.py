"""GF(2^8) arithmetic for Reed-Solomon-style double parity (RAID-6).

The field is GF(256) with the usual AES/RAID polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D) and generator 2.  Log/antilog
tables make multiplication a lookup; page-wide helpers operate on whole
page payloads at once.

Only what RAID-6 needs is implemented: add (XOR), multiply, divide,
power-of-generator weighting, and the 2×2 solve used to recover two
lost data pages.
"""

from __future__ import annotations

_POLY = 0x11D

EXP = [0] * 512
LOG = [0] * 256
_value = 1
for _i in range(255):
    EXP[_i] = _value
    LOG[_value] = _i
    _value <<= 1
    if _value & 0x100:
        _value ^= _POLY
for _i in range(255, 512):
    EXP[_i] = EXP[_i - 255]


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return EXP[LOG[a] + LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``.

    Raises:
        ZeroDivisionError: division by the zero element.
    """
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return EXP[(LOG[a] - LOG[b]) % 255]


def gf_pow(base: int, exponent: int) -> int:
    """``base ** exponent`` in the field."""
    if base == 0:
        return 0 if exponent else 1
    return EXP[(LOG[base] * exponent) % 255]


def page_mul(coefficient: int, page: bytes) -> bytes:
    """Multiply every byte of ``page`` by ``coefficient``."""
    if coefficient == 0:
        return bytes(len(page))
    if coefficient == 1:
        return bytes(page)
    shift = LOG[coefficient]
    return bytes(EXP[shift + LOG[b]] if b else 0 for b in page)


def page_xor(a: bytes, b: bytes) -> bytes:
    """Add two pages (XOR)."""
    return bytes(x ^ y for x, y in zip(a, b))


def q_parity(pages: list) -> bytes:
    """The Q syndrome: ``Σ g^i · D_i`` with g = 2 and i the member index."""
    if not pages:
        raise ValueError("q_parity needs at least one page")
    out = bytes(len(pages[0]))
    for index, page in enumerate(pages):
        out = page_xor(out, page_mul(gf_pow(2, index), page))
    return out


def solve_two_erasures(index_a: int, index_b: int, p_syndrome: bytes,
                       q_syndrome: bytes) -> tuple:
    """Recover two lost data pages from the P and Q syndromes.

    ``p_syndrome`` is the XOR of the surviving data pages with P
    (= D_a ⊕ D_b), ``q_syndrome`` the same for Q
    (= g^a·D_a ⊕ g^b·D_b).  Solving the 2×2 system byte-wise:

        D_a = (g^b · P* ⊕ Q*) / (g^a ⊕ g^b)
        D_b = P* ⊕ D_a

    Returns ``(D_a, D_b)``.
    """
    if index_a == index_b:
        raise ValueError("erasure indices must differ")
    g_a = gf_pow(2, index_a)
    g_b = gf_pow(2, index_b)
    denominator = g_a ^ g_b          # field addition = XOR
    numerator = page_xor(page_mul(g_b, p_syndrome), q_syndrome)
    inv = gf_div(1, denominator)
    d_a = page_mul(inv, numerator)
    d_b = page_xor(p_syndrome, d_a)
    return d_a, d_b
