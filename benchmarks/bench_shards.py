"""Sharded-engine benchmark: throughput and log transfers vs K and H.

Runs the same seeded workload over a K-way
:class:`~repro.db.sharded.ShardedDatabase` for every combination of
shard count K and group-commit flush horizon H, and measures the
quantity group commit exists to amortize: **log transfers per
committed transaction** (transfers on the negative-id log devices —
the shards' duplexed WALs plus the global commit log).

With per-commit forcing (H=1) every commit flushes a partial log page
to both mirrors of every log it touched; at H>1 the shared
:class:`~repro.wal.group_commit.GroupCommitCoordinator` batches those
forces so H commits' records ride the same page flushes.  The
acceptance criterion is the PR's headline: **at every K >= 2, H=8
spends fewer log transfers per committed transaction than H=1.**

Results go to ``benchmarks/results/shards_perf.json`` and are mirrored
to ``BENCH_shards.json`` at the repository root so later PRs have a
trajectory to regress against.

Run standalone (``python benchmarks/bench_shards.py [--quick]``) or
via pytest (``pytest benchmarks/bench_shards.py``).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.db import ShardedDatabase, preset                   # noqa: E402
from repro.sim import Simulator, WorkloadSpec                  # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "shards_perf.json"
ROOT_TRAJECTORY_PATH = (pathlib.Path(__file__).parent.parent
                        / "BENCH_shards.json")

PRESET = "page-force-rda"
SHARD_COUNTS = (1, 2, 4)
FLUSH_HORIZONS = (1, 8)
TRANSACTIONS = 400
QUICK_TRANSACTIONS = 150

# 24 groups x (5-1) data pages = 96 data pages, divisible by every K
OVERRIDES = dict(group_size=5, num_groups=24, buffer_capacity=32)

SPEC = WorkloadSpec(concurrency=4, pages_per_txn=4,
                    update_txn_fraction=0.9, update_probability=0.9,
                    abort_probability=0.02, communality=0.4)


def run_cell(shards: int, horizon: int, transactions: int) -> dict:
    """One (K, H) cell: drive the workload, return the measurements."""
    db = ShardedDatabase(preset(PRESET, **OVERRIDES), shards=shards,
                         flush_horizon=horizon)
    simulator = Simulator(db, SPEC, seed=7)
    started = time.perf_counter()
    report = simulator.run(transactions)
    elapsed = time.perf_counter() - started
    stats = db.statistics()
    committed = max(1, report.committed)
    log_transfers = db.stats.log_transfers
    return {
        "shards": shards,
        "flush_horizon": horizon,
        "committed": report.committed,
        "aborted": report.aborted,
        "page_transfers": db.stats.total,
        "log_transfers": log_transfers,
        "log_transfers_per_commit": round(log_transfers / committed, 3),
        "transfers_per_commit": round(db.stats.total / committed, 3),
        "deferred_forces": stats["deferred_forces"],
        "batched_flushes": stats["batched_flushes"],
        "unlogged_steal_fraction": round(
            stats["unlogged_steals"]
            / max(1, stats["unlogged_steals"] + stats["logged_steals"]), 3),
        "wall_seconds": round(elapsed, 4),
        "txns_per_second": round(report.committed / max(elapsed, 1e-9), 1),
    }


def run(quick: bool = False) -> dict:
    transactions = QUICK_TRANSACTIONS if quick else TRANSACTIONS
    cells = [run_cell(shards, horizon, transactions)
             for shards in SHARD_COUNTS
             for horizon in FLUSH_HORIZONS]
    by_key = {(c["shards"], c["flush_horizon"]): c for c in cells}
    # headline: at K>=2 the batched horizon must beat per-commit forcing
    group_commit_wins = {
        f"k{shards}": (by_key[(shards, 8)]["log_transfers_per_commit"]
                       < by_key[(shards, 1)]["log_transfers_per_commit"])
        for shards in SHARD_COUNTS if shards >= 2
    }
    return {
        "benchmark": "sharded engine: throughput and log transfers vs K, H",
        "preset": PRESET,
        "overrides": OVERRIDES,
        "transactions": transactions,
        "seed": 7,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cells": cells,
        "acceptance": {
            "criterion": "log transfers per committed txn: H=8 < H=1 "
                         "at every K >= 2",
            "group_commit_reduces_log_transfers": group_commit_wins,
            "ok": all(group_commit_wins.values()),
        },
    }


def write_results(doc: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    for path in (RESULTS_PATH, ROOT_TRAJECTORY_PATH):
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def test_group_commit_amortizes_log_forces():
    """pytest entry: quick run, still enforcing the amortization win."""
    doc = run(quick=True)
    write_results(doc)
    assert doc["acceptance"]["ok"], (
        "group commit (H=8) did not reduce log transfers per committed "
        f"transaction at every K>=2: {doc['acceptance']}")


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    doc = run(quick=quick)
    write_results(doc)
    print(json.dumps(doc, indent=2))
    print(f"\n[written to {RESULTS_PATH} and {ROOT_TRAJECTORY_PATH}]")
    if not doc["acceptance"]["ok"]:
        print("FAIL: group commit did not reduce log transfers per commit",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
