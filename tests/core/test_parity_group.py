"""Tests for the Dirty_Set table (paper Figure 3 state machine)."""

import pytest

from repro.core.parity_group import DirtyEntry, DirtySet
from repro.errors import ParityGroupError


def entry(group=1, txn=10, page=5, index=0, twin=1, ts=100):
    return DirtyEntry(group=group, txn_id=txn, page_id=page, page_index=index,
                      working_twin=twin, working_timestamp=ts)


@pytest.fixture
def ds():
    return DirtySet()


class TestTransitions:
    def test_initially_clean(self, ds):
        assert not ds.is_dirty(1)
        assert 1 not in ds
        assert len(ds) == 0

    def test_mark_dirty(self, ds):
        ds.mark_dirty(entry())
        assert ds.is_dirty(1)
        assert ds.entry(1).page_id == 5
        assert len(ds) == 1

    def test_resteal_refreshes(self, ds):
        ds.mark_dirty(entry(ts=100))
        ds.mark_dirty(entry(ts=200))
        assert ds.entry(1).working_timestamp == 200
        assert len(ds) == 1

    def test_second_unlogged_page_rejected(self, ds):
        ds.mark_dirty(entry(page=5))
        with pytest.raises(ParityGroupError):
            ds.mark_dirty(entry(page=6))

    def test_other_txn_same_page_rejected(self, ds):
        ds.mark_dirty(entry(txn=10))
        with pytest.raises(ParityGroupError):
            ds.mark_dirty(entry(txn=11))

    def test_clean_returns_entry(self, ds):
        ds.mark_dirty(entry())
        removed = ds.clean(1)
        assert removed.page_id == 5
        assert not ds.is_dirty(1)

    def test_clean_unknown_group_raises(self, ds):
        with pytest.raises(ParityGroupError):
            ds.clean(1)

    def test_entry_of_clean_group_raises(self, ds):
        with pytest.raises(ParityGroupError):
            ds.entry(3)

    def test_get_returns_none_for_clean(self, ds):
        assert ds.get(3) is None


class TestWriteRule:
    """The paper's rule: write-back without UNDO logging iff the group is
    clean or dirty for the same page by the same transaction."""

    def test_clean_group_allows(self, ds):
        assert ds.can_write_without_undo(1, 5, 10)

    def test_same_page_same_txn_allows(self, ds):
        ds.mark_dirty(entry(page=5, txn=10))
        assert ds.can_write_without_undo(1, 5, 10)

    def test_other_page_denied(self, ds):
        ds.mark_dirty(entry(page=5, txn=10))
        assert not ds.can_write_without_undo(1, 6, 10)

    def test_other_txn_denied(self, ds):
        ds.mark_dirty(entry(page=5, txn=10))
        assert not ds.can_write_without_undo(1, 5, 11)


class TestPerTransactionIndex:
    def test_groups_of(self, ds):
        ds.mark_dirty(entry(group=1, txn=10, page=5))
        ds.mark_dirty(entry(group=3, txn=10, page=15))
        ds.mark_dirty(entry(group=2, txn=11, page=9))
        assert ds.groups_of(10) == [1, 3]
        assert ds.groups_of(11) == [2]
        assert ds.groups_of(99) == []

    def test_clean_updates_index(self, ds):
        ds.mark_dirty(entry(group=1, txn=10))
        ds.clean(1)
        assert ds.groups_of(10) == []

    def test_entries_sorted(self, ds):
        ds.mark_dirty(entry(group=3, txn=10, page=15))
        ds.mark_dirty(entry(group=1, txn=11, page=5))
        assert [e.group for e in ds.entries()] == [1, 3]

    def test_lose_memory(self, ds):
        ds.mark_dirty(entry())
        ds.lose_memory()
        assert len(ds) == 0
        assert ds.groups_of(10) == []
