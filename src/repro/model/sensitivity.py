"""Sensitivity analysis over the model's parameters.

The paper sweeps communality ``C`` (Figures 9-12) and transaction size
``s`` (Figure 13).  This module generalizes: sweep *any*
:class:`~repro.model.params.ModelParams` field for any of the four cost
models and report how the RDA benefit responds.  Used by the ablation
benchmarks and handy for what-if exploration in a REPL:

    >>> from repro.model.sensitivity import rda_gain_sweep
    >>> from repro.model.page_logging import force_toc
    >>> sweep = rda_gain_sweep(force_toc, "P", [2, 6, 12, 24], C=0.9)
    >>> [round(g, 3) for _, g in sweep]   # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ModelError
from .params import ModelParams, high_update

SWEEPABLE = ("C", "s", "P", "B", "S", "N", "f_u", "p_u", "p_b", "d")


@dataclass
class SweepResult:
    """One parameter sweep's outcome.

    Attributes:
        parameter: field swept.
        values: the x axis.
        baseline: throughput without RDA per x.
        with_rda: throughput with RDA per x.
    """

    parameter: str
    values: tuple
    baseline: list = field(default_factory=list)
    with_rda: list = field(default_factory=list)

    @property
    def gains(self) -> list:
        """Relative RDA gain per sweep point."""
        return [rda / base - 1.0
                for base, rda in zip(self.baseline, self.with_rda)]

    def format_table(self) -> str:
        """Plain-text table of the sweep."""
        lines = [f"sensitivity: RDA gain vs {self.parameter}",
                 f"{self.parameter:>8} | {'¬RDA':>12} | {'RDA':>12} | {'gain':>7}"]
        for value, base, rda, gain in zip(self.values, self.baseline,
                                          self.with_rda, self.gains):
            lines.append(f"{value:8g} | {base:12.0f} | {rda:12.0f} "
                         f"| {gain:6.1%}")
        return "\n".join(lines)


def sweep(cost_fn, parameter: str, values, base_params: ModelParams | None = None,
          **overrides) -> SweepResult:
    """Evaluate ``cost_fn`` (a model like ``page_logging.force_toc``)
    across ``values`` of ``parameter``, with and without RDA.

    Args:
        cost_fn: one of the four cost-model functions.
        parameter: a :data:`SWEEPABLE` field name.
        values: the sweep points.
        base_params: starting parameters (default: high-update).
        overrides: extra fixed-field overrides (e.g. ``C=0.9``).
    """
    if parameter not in SWEEPABLE:
        raise ModelError(
            f"cannot sweep {parameter!r}; choose from {SWEEPABLE}")
    params = (base_params if base_params is not None
              else high_update()).with_(**overrides)
    result = SweepResult(parameter=parameter, values=tuple(values))
    for value in values:
        point = params.with_(**{parameter: value})
        result.baseline.append(cost_fn(point, rda=False).throughput)
        result.with_rda.append(cost_fn(point, rda=True).throughput)
    return result


def rda_gain_sweep(cost_fn, parameter: str, values, **overrides) -> list:
    """Shorthand: ``[(value, gain), ...]`` for a sweep."""
    result = sweep(cost_fn, parameter, values, **overrides)
    return list(zip(result.values, result.gains))
