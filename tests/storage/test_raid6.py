"""Tests for GF(2^8) arithmetic and the RAID-6 double-parity array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnrecoverableDataError
from repro.storage import make_page
from repro.storage.gf256 import (gf_div, gf_mul, gf_pow, page_mul, page_xor,
                                 q_parity, solve_two_erasures)
from repro.storage.page import PAGE_SIZE
from repro.storage.raid6 import make_raid6

bytes_pages = st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE)
elements = st.integers(0, 255)


class TestGF256:
    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements.filter(bool), elements.filter(bool))
    def test_div_inverts_mul(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    @given(elements)
    def test_identity_and_zero(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    @given(elements, elements, elements)
    def test_distributive_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    def test_generator_order(self):
        seen = set()
        for exponent in range(255):
            seen.add(gf_pow(2, exponent))
        assert len(seen) == 255      # full multiplicative group

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    @given(st.lists(bytes_pages, min_size=2, max_size=5), st.data())
    def test_solve_two_erasures(self, group, data):
        """Property: the 2x2 solver recovers any two members exactly."""
        i = data.draw(st.integers(0, len(group) - 1))
        j = data.draw(st.integers(0, len(group) - 1).filter(lambda x: x != i))
        i, j = sorted((i, j))
        p = group[0]
        for page in group[1:]:
            p = page_xor(p, page)
        q = q_parity(group)
        p_star, q_star = p, q
        for index, page in enumerate(group):
            if index in (i, j):
                continue
            p_star = page_xor(p_star, page)
            q_star = page_xor(q_star, page_mul(gf_pow(2, index), page))
        d_i, d_j = solve_two_erasures(i, j, p_star, q_star)
        assert d_i == group[i]
        assert d_j == group[j]

    def test_solver_rejects_same_index(self):
        with pytest.raises(ValueError):
            solve_two_erasures(1, 1, bytes(4), bytes(4))


@pytest.fixture
def array():
    array = make_raid6(4, 8)
    for g in range(8):
        array.full_stripe_write(
            g, [make_page(bytes([g + 1, i + 1])) for i in range(4)])
    return array


class TestRaid6Array:
    def test_load_consistent(self, array):
        assert array.scrub() == []

    def test_small_write_maintains_both_parities(self, array):
        array.write_page(0, make_page(b"new"))
        array.write_page(5, make_page(b"other"))
        assert array.scrub() == []

    def test_small_write_costs_six(self, array):
        with array.stats.window() as w:
            array.write_page(0, make_page(b"x"))
        assert w.total == 6
        with array.stats.window() as w:
            array.write_page(0, make_page(b"y"), old_data=make_page(b"x"))
        assert w.total == 5

    def test_single_failure_degraded_read(self, array):
        expected = array.peek_page(0)
        array.fail_disk(array.geometry.data_address(0).disk)
        assert array.read_page(0) == expected

    def test_double_data_failure_degraded_read(self, array):
        group = array.geometry.group_of(0)
        pages = array.geometry.group_pages(group)
        expected = {p: array.peek_page(p) for p in pages[:2]}
        for p in pages[:2]:
            array.fail_disk(array.geometry.data_address(p).disk)
        for p, payload in expected.items():
            assert array.read_page(p) == payload

    def test_data_plus_p_failure(self, array):
        expected = array.peek_page(0)
        group = array.geometry.group_of(0)
        array.fail_disk(array.geometry.data_address(0).disk)
        array.fail_disk(array._p_addr(group).disk)
        assert array.read_page(0) == expected

    def test_triple_failure_unrecoverable(self, array):
        group = array.geometry.group_of(0)
        pages = array.geometry.group_pages(group)
        for p in pages[:2]:
            array.fail_disk(array.geometry.data_address(p).disk)
        array.fail_disk(array._p_addr(group).disk)
        with pytest.raises(UnrecoverableDataError):
            array.read_page(0)

    def test_rebuild_after_double_failure(self, array):
        snapshot = {p: array.peek_page(p)
                    for p in range(array.num_data_pages)}
        array.fail_disk(0)
        array.fail_disk(1)
        array.rebuild_disk(0)      # rebuilt while disk 1 is still down
        array.rebuild_disk(1)
        assert array.failed_disks() == []
        assert array.scrub() == []
        for p, payload in snapshot.items():
            assert array.read_page(p) == payload

    def test_wrong_payload_size(self, array):
        with pytest.raises(ValueError):
            array.write_page(0, b"small")


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_raid6_random_writes_and_double_failures(data):
    """Property: after random writes, any two failed disks are fully
    recoverable."""
    array = make_raid6(data.draw(st.integers(2, 5), label="N"), 6)
    shadow = {}
    for _ in range(data.draw(st.integers(1, 15), label="writes")):
        page = data.draw(st.integers(0, array.num_data_pages - 1),
                         label="page")
        payload = data.draw(bytes_pages, label="payload")
        array.write_page(page, payload)
        shadow[page] = payload
    disks = data.draw(
        st.lists(st.integers(0, array.geometry.num_disks - 1), min_size=2,
                 max_size=2, unique=True), label="failures")
    for disk in disks:
        array.fail_disk(disk)
    for page, payload in shadow.items():
        assert array.read_page(page) == payload
    for disk in disks:
        array.rebuild_disk(disk)
    assert array.scrub() == []
