"""Heap files: a record collection spread over a range of slotted pages.

A thin convenience layer for the examples and workloads: it routes
inserts to a page with room, remembers record ids, and scans.  All
operations go through the transactional :class:`~repro.db.database.Database`
record API, so they are logged, locked, and recoverable like any other
access.
"""

from __future__ import annotations

from .slotted_page import PageFullError, SlottedPage


class HeapFile:
    """Records over a fixed set of pre-formatted pages.

    Args:
        db: the database (must be in record-logging mode).
        pages: logical page ids backing the heap; format them first with
            :meth:`~repro.db.database.Database.format_record_pages`.
    """

    def __init__(self, db, pages) -> None:
        self.db = db
        self.pages = list(pages)
        if not self.pages:
            raise ValueError("a heap file needs at least one page")

    def insert(self, txn_id: int, data: bytes) -> tuple:
        """Insert a record; returns its record id ``(page, slot)``.

        Raises:
            PageFullError: if no page in the heap has room.
        """
        for page in self.pages:
            try:
                slot = self.db.insert_record(txn_id, page, data)
                return (page, slot)
            except PageFullError:
                continue
        raise PageFullError("heap file is full")

    def read(self, txn_id: int, rid: tuple) -> bytes:
        """Read the record with id ``rid``."""
        page, slot = rid
        return self.db.read_record(txn_id, page, slot)

    def update(self, txn_id: int, rid: tuple, data: bytes) -> None:
        """Overwrite the record with id ``rid``."""
        page, slot = rid
        self.db.update_record(txn_id, page, slot, data)

    def delete(self, txn_id: int, rid: tuple) -> bytes:
        """Delete the record with id ``rid``; returns the old bytes."""
        page, slot = rid
        return self.db.delete_record(txn_id, page, slot)

    def scan(self, txn_id: int):
        """Yield ``(rid, bytes)`` for every record, page by page."""
        for page in self.pages:
            payload = self.db.read_page(txn_id, page)
            sp = SlottedPage.from_bytes(payload)
            for slot in sp.slots():
                yield (page, slot), self.db.read_record(txn_id, page, slot)

    def record_count(self, txn_id: int) -> int:
        """Number of live records in the heap."""
        return sum(1 for _ in self.scan(txn_id))
