"""Continuous chaos: nemesis scheduling, phased stress workloads, live
judging and stress reporting (``repro stress``).

The pieces, innermost first:

* :mod:`~repro.stress.nemesis` — :class:`NemesisProfile` /
  :class:`Nemesis` (seeded weighted fault scheduling) and
  :class:`ActiveFaultRegistry` (attribution windows).
* :mod:`~repro.stress.workload` — :class:`StressWorkload`, a rotating
  phase mix (hot Zipf writes / scan reads / mixed) over the PR-2
  :class:`~repro.sim.workload.WorkloadGenerator`.
* :mod:`~repro.stress.runner` — :class:`StressRunner`, the chaos loop
  wiring the PR-4 oracles (invariant engine, differential mirror,
  structural verify) and the PR-7 recovery profile into every fault's
  open window.
* :mod:`~repro.stress.report` — :class:`StressReport` and its JSON /
  table renderings.
"""

from .nemesis import (FAULT_KINDS, PROFILES, ActiveFault,
                      ActiveFaultRegistry, Nemesis, NemesisProfile,
                      resolve_profile)
from .report import StressReport, format_stress_report, matrix_to_dict
from .runner import (StressOptions, StressRunner, default_matrix,
                     run_stress_matrix)
from .workload import StressPhase, StressWorkload, default_phases

__all__ = [
    "FAULT_KINDS",
    "PROFILES",
    "ActiveFault",
    "ActiveFaultRegistry",
    "Nemesis",
    "NemesisProfile",
    "StressOptions",
    "StressPhase",
    "StressReport",
    "StressRunner",
    "StressWorkload",
    "default_matrix",
    "default_phases",
    "format_stress_report",
    "matrix_to_dict",
    "resolve_profile",
    "run_stress_matrix",
]
