"""The online invariant engine: clean runs stay clean, every mutant
is caught by its rule, and barriers fire where the protocol says."""

import pytest

from repro.check import (DirtySetBoundRule, InvariantEngine,
                         LsnMonotonicityRule, MutantError,
                         TwinParityIdentityRule, WalBeforeDataRule,
                         WriteBehindRule, check_restart, default_rules)
from repro.db import Database, preset
from repro.storage import make_page


def make_db(name="page-force-rda", engine=True, **kw):
    defaults = dict(group_size=5, num_groups=12, buffer_capacity=8)
    defaults.update(kw)
    db = Database(preset(name, **defaults))
    if engine:
        InvariantEngine.attach(db)
    return db


def dirty_db(name="page-force-rda"):
    """A database with one unlogged-stolen page (dirty group 0)."""
    db = make_db(name)
    txn = db.begin()
    db.write_page(txn, 0, make_page(b"stolen"))
    db.buffer.flush_pages_of(txn)
    assert db.rda.dirty_set.is_dirty(0)
    return db, txn


class TestEngineWiring:
    def test_attach_sets_hooks(self):
        db = make_db()
        assert db.invariants is not None
        assert db.rda.barrier_hook == db.invariants.barrier
        assert db.array.barrier_hook == db.invariants.barrier

    def test_attach_without_rda(self):
        db = make_db("page-force-log")
        assert db.invariants is not None

    def test_unknown_barrier_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.invariants.barrier("teatime")

    def test_barriers_fire_through_a_transaction(self):
        db, txn = dirty_db()
        db.commit(txn)
        counts = db.invariants.barrier_counts
        assert counts["steal"] >= 1
        assert counts["twin_write"] >= 1
        assert counts["flip"] >= 1
        assert counts["commit"] == 1
        assert db.invariants.clean
        db.invariants.assert_clean()

    def test_restart_barrier_fires(self):
        db, _txn = dirty_db()
        db.crash()
        db.recover()
        assert db.invariants.barrier_counts["restart"] == 1
        assert db.invariants.clean

    def test_checkpoint_barrier_fires(self):
        db = make_db("page-noforce-rda")
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"a"))
        db.commit(txn)
        db.checkpoint()
        assert db.invariants.barrier_counts["checkpoint"] == 1
        assert db.invariants.clean

    def test_abort_barrier_fires(self):
        db, txn = dirty_db()
        db.abort(txn)
        assert db.invariants.barrier_counts["abort"] == 1
        assert db.invariants.clean

    def test_assert_clean_raises_on_violation(self):
        db, _txn = dirty_db()
        TwinParityIdentityRule().mutate(db)
        db.invariants.barrier("commit", txn=0)
        with pytest.raises(AssertionError):
            db.invariants.assert_clean()

    def test_check_restart_on_recovered_db(self):
        db, _txn = dirty_db()
        db.crash()
        db.recover()
        assert check_restart(db) == []

    def test_default_rules_cover_all_five(self):
        names = {rule.name for rule in default_rules()}
        assert names == {"twin-parity-identity", "dirty-set-bound",
                         "wal-before-data", "lsn-monotonicity",
                         "write-behind"}


class TestTwinParityIdentityRule:
    def test_clean_dirty_group_passes(self):
        db, _txn = dirty_db()
        assert TwinParityIdentityRule().check(db, "commit", {}) == []

    def test_mutant_caught(self):
        db, _txn = dirty_db()
        rule = TwinParityIdentityRule()
        rule.mutate(db)
        found = rule.check(db, "commit", {})
        assert found
        assert all(v.kind == "twin-parity-identity" for v in found)

    def test_mutant_caught_at_next_live_barrier(self):
        # while the group is still dirty, any commit barrier re-checks
        # the identity and catches the corruption
        db, txn = dirty_db()
        TwinParityIdentityRule().mutate(db)
        other = db.begin()
        db.write_page(other, 30, make_page(b"elsewhere"))
        db.commit(other)
        assert not db.invariants.clean
        assert db.rda.dirty_set.is_dirty(0)     # victim group untouched

    def test_mutant_needs_a_dirty_group(self):
        db = make_db()
        with pytest.raises(MutantError):
            TwinParityIdentityRule().mutate(db)

    def test_header_disagreement_caught(self):
        db, _txn = dirty_db()
        entry = db.rda.dirty_set.entries()[0]
        _p, header = db.array.peek_twin(entry.group, entry.working_twin)
        db.array.rewrite_twin_header(entry.group, entry.working_twin,
                                     header.with_(txn_id=999))
        found = TwinParityIdentityRule().check(db, "commit", {})
        assert any("header" in v.detail for v in found)


class TestDirtySetBoundRule:
    def test_clean_dirty_group_passes(self):
        db, _txn = dirty_db()
        assert DirtySetBoundRule().check(db, "commit", {}) == []

    def test_mutant_caught(self):
        db, _txn = dirty_db()
        rule = DirtySetBoundRule()
        rule.mutate(db)
        found = rule.check(db, "commit", {})
        assert found
        assert all(v.kind == "dirty-set-bound" for v in found)

    def test_mutant_needs_a_dirty_group(self):
        db = make_db()
        with pytest.raises(MutantError):
            DirtySetBoundRule().mutate(db)

    def test_no_rda_is_vacuously_clean(self):
        db = make_db("page-force-log")
        assert DirtySetBoundRule().check(db, "commit", {}) == []


class TestWalBeforeDataRule:
    def test_logged_steal_passes(self):
        db = make_db("page-force-log")
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"a"))
        db.buffer.flush_pages_of(txn)   # logged steal, force intact
        assert db.invariants.clean
        assert db.invariants.barrier_counts["steal"] >= 1

    def test_mutant_caught(self):
        db = make_db("page-force-log")
        WalBeforeDataRule().mutate(db)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"a"))
        db.buffer.flush_pages_of(txn)
        assert any(v.kind == "wal-before-data"
                   for v in db.invariants.violations)

    def test_mutant_caught_in_record_mode(self):
        db = make_db("record-noforce-log")
        db.format_record_pages(range(4))
        WalBeforeDataRule().mutate(db)
        txn = db.begin()
        db.insert_record(txn, 0, b"x")
        db.buffer.flush_pages_of(txn)
        assert any(v.kind == "wal-before-data"
                   for v in db.invariants.violations)

    def test_unlogged_steal_covered_by_dirty_set(self):
        db, _txn = dirty_db()
        assert not [v for v in db.invariants.violations
                    if v.kind == "wal-before-data"]


class TestWriteBehindRule:
    def redo_db(self, name="page-noforce-redo", **kw):
        """A REDO-only database with one committed page flushed to disk
        (so ``_durable_page_lsn`` has a marker to judge)."""
        db = make_db(name, checkpoint_interval=None, **kw)
        txn = db.begin()
        if db.config.record_logging:
            db.format_record_pages([0])
            db.insert_record(txn, 0, b"chained")
        else:
            db.write_page(txn, 0, make_page(b"chained"))
        db.commit(txn)
        db.checkpoint()
        return db

    def test_vacuous_outside_redo_only(self):
        db, _txn = dirty_db()
        assert WriteBehindRule().check(db, "commit", {}) == []

    def test_clean_checkpointed_run_passes(self):
        for name in ("page-noforce-redo", "record-noforce-rda-redo"):
            db = self.redo_db(name)
            assert db._durable_page_lsn        # the marker is being judged
            assert WriteBehindRule().check(db, "checkpoint", {}) == []
            assert db.invariants.clean

    def test_mutant_caught(self):
        db = self.redo_db()
        rule = WriteBehindRule()
        rule.mutate(db)
        found = rule.check(db, "checkpoint", {})
        assert found
        assert all(v.kind == "write-behind" for v in found)

    def test_mutant_refuses_undo_logging_classes(self):
        db, _txn = dirty_db()
        with pytest.raises(MutantError):
            WriteBehindRule().mutate(db)

    def test_mutant_needs_a_flushed_page(self):
        db = make_db("page-noforce-redo", checkpoint_interval=None)
        with pytest.raises(MutantError):
            WriteBehindRule().mutate(db)

    def test_pure_class_steal_flagged(self):
        db = self.redo_db()
        found = WriteBehindRule().check(db, "steal",
                                        {"page": 3, "logged": False,
                                         "txns": {1}})
        assert any("stolen under the pure" in v.detail for v in found)

    def test_logged_steal_flagged_under_hybrid(self):
        db = self.redo_db("record-noforce-rda-redo")
        found = WriteBehindRule().check(db, "steal",
                                        {"page": 3, "logged": True,
                                         "txns": {1}})
        assert any("logged undo records" in v.detail for v in found)


class TestLsnMonotonicityRule:
    def test_clean_log_passes(self):
        db, txn = dirty_db()
        db.commit(txn)
        assert LsnMonotonicityRule().check(db, "commit", {}) == []

    def test_mutant_caught(self):
        db = make_db("page-force-log")
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"a"))
        db.write_page(txn, 1, make_page(b"b"))
        db.buffer.flush_pages_of(txn)
        rule = LsnMonotonicityRule()
        rule.mutate(db)
        found = rule.check(db, "commit", {})
        assert found
        assert all(v.kind == "lsn-monotonicity" for v in found)

    def test_mutant_needs_records(self):
        db = make_db()
        with pytest.raises(MutantError):
            LsnMonotonicityRule().mutate(db)

    def test_survives_crash_reconciliation(self):
        db = make_db("page-noforce-log")
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"a"))
        db.commit(txn)
        db.crash()
        db.recover()
        assert db.invariants.clean
