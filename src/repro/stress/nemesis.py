"""Nemesis: seeded, weighted fault scheduling with active-fault tracking.

The fault-injection harness of PR 3 is exhaustive but *offline*: one
scripted workload, every crash point enumerated, judged at quiescence.
A production system instead sees faults arrive on a schedule while a
mixed workload runs — and when something goes wrong, the first question
is *which faults were in flight*.  This module provides the scheduling
half of that picture:

* :class:`NemesisProfile` — a named, weighted menu of fault kinds.
* :class:`Nemesis` — a seeded scheduler drawing fault actions from a
  profile.  Draws are **weighted without replacement within a coverage
  cycle**: every eligible kind fires once before any kind fires twice,
  so even a short run exercises the full menu, while the weights shape
  the order and the long-run mix.  The executed schedule is recorded
  (kind, parameters, outcome) and is byte-identical for a given
  ``(seed, profile)`` pair.
* :class:`ActiveFaultRegistry` — every injected fault is *open* from
  injection until its repair is judged; any violation observed while
  faults are open is attributed to the set of open faults
  (``active_labels``).  This is what makes a continuous-chaos verdict
  actionable: "state divergence while ``media#4`` was active" instead
  of "something broke during the soak".

The registry/scheduler know nothing about databases; the executors
live in :mod:`repro.stress.runner`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ModelError

FAULT_KINDS = ("crash", "media", "latent", "torn_log", "trim",
               "shard_kill", "mutant", "worker_kill")
"""Every fault kind an executor exists for.

``crash``
    Lose main memory (whole engine, or the sharded facade after the
    group-commit drain) and run restart recovery.
``media``
    Fail-stop one disk, then rebuild it from the surviving redundancy
    (``on_lost_undo="adopt"``).
``latent``
    Corrupt one data sector in place (undetected media error), then run
    a patrol scrub that must find and repair it.
``torn_log``
    Crash, then mangle one byte of one duplex copy of a WAL within the
    durable region — restart must heal the log from its mate.
``trim``
    Take an ACC checkpoint (where the discipline supports one) and trim
    the log to its safe point — the paper's log-maintenance path.
``shard_kill``
    K ≥ 2 only: crash and restart a strict subset of shard engines
    while the rest of the facade stays up; globally committed
    transactions must survive on the restarted shards.
``mutant``
    Apply an invariant rule's ``mutate(db)`` corruption (the PR-4
    sensitivity hooks) and leave it active across the next batch — the
    judges are *expected* to fire, and the violation must be attributed
    to this fault.  Weight 0 in every production profile; the
    ``mutation`` profile and the attribution tests enable it.
``worker_kill``
    Worker-process mode only: SIGKILL one shard's worker process with
    no warning (possibly mid-commit-window or mid-flush), then drive
    the facade crash contract — the supervisor heals the worker by
    journal replay, the group-commit drain makes every acknowledged
    commit durable, and restart recovery must cross-check clean.
"""


@dataclass(frozen=True)
class NemesisProfile:
    """A named fault mix.

    Args:
        name: profile label (appears in reports and schedules).
        weights: fault kind -> relative weight; kinds absent or with
            weight 0 are never drawn.  Iteration order matters for
            determinism, so pass a plain dict built in a fixed order.
        injections_per_tick: fault actions attempted per nemesis tick
            (one tick runs between two transaction batches).
        max_shard_kills: upper bound on shards killed by one
            ``shard_kill`` action (always further capped at K-1).
        mutant_rules: rule names eligible for the ``mutant`` kind
            (resolved by the runner against ``repro.check``).
    """

    name: str
    weights: Mapping[str, float]
    injections_per_tick: int = 1
    max_shard_kills: int = 1
    mutant_rules: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = [kind for kind in self.weights if kind not in FAULT_KINDS]
        if unknown:
            raise ModelError(f"unknown fault kinds {unknown}; "
                             f"choose from {FAULT_KINDS}")
        if self.injections_per_tick < 1:
            raise ModelError("injections_per_tick must be >= 1")
        if not any(weight > 0 for weight in self.weights.values()):
            raise ModelError(f"profile {self.name!r} enables no fault kind")

    def enabled_kinds(self) -> List[str]:
        """Kinds with positive weight, in declaration order."""
        return [kind for kind, weight in self.weights.items() if weight > 0]


PROFILES: Dict[str, NemesisProfile] = {
    "default": NemesisProfile(
        name="default",
        weights={"crash": 3.0, "media": 2.0, "latent": 2.0,
                 "torn_log": 2.0, "trim": 1.0, "shard_kill": 2.0,
                 "worker_kill": 2.0}),
    "aggressive": NemesisProfile(
        name="aggressive",
        weights={"crash": 3.0, "media": 3.0, "latent": 3.0,
                 "torn_log": 3.0, "trim": 1.0, "shard_kill": 3.0,
                 "worker_kill": 3.0},
        injections_per_tick=2),
    "media-heavy": NemesisProfile(
        name="media-heavy",
        weights={"media": 4.0, "latent": 4.0, "crash": 1.0,
                 "torn_log": 1.0, "trim": 1.0, "shard_kill": 1.0}),
    "crash-only": NemesisProfile(
        name="crash-only",
        weights={"crash": 3.0, "trim": 1.0}),
    "mutation": NemesisProfile(
        name="mutation",
        weights={"mutant": 1.0},
        mutant_rules=("wal-before-data",)),
}
"""The built-in nemesis profiles (``repro stress --nemesis-profile``)."""


def resolve_profile(profile) -> NemesisProfile:
    """Accept a profile name or an already-built profile."""
    if isinstance(profile, NemesisProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ModelError(f"unknown nemesis profile {profile!r}; "
                         f"choose from {sorted(PROFILES)}") from None


# ---------------------------------------------------------------- the registry


@dataclass
class ActiveFault:
    """One injected fault's lifecycle record."""

    fault_id: int
    kind: str
    detail: str
    opened_tick: int
    closed_tick: Optional[int] = None
    survived: Optional[bool] = None

    @property
    def label(self) -> str:
        """Stable attribution label, e.g. ``media#4``."""
        return f"{self.kind}#{self.fault_id}"

    @property
    def open(self) -> bool:
        return self.closed_tick is None

    def to_dict(self) -> dict:
        return {"id": self.fault_id, "kind": self.kind, "detail": self.detail,
                "opened_tick": self.opened_tick,
                "closed_tick": self.closed_tick, "survived": self.survived}


class ActiveFaultRegistry:
    """Tracks every injected fault from injection to judged repair.

    A fault is *open* between :meth:`open` and :meth:`close`; while any
    fault is open, every violation the judges find carries the open
    set's labels.  ``survived`` means the fault was injected, repaired,
    and judged without a single attributed violation.
    """

    def __init__(self) -> None:
        self.faults: List[ActiveFault] = []
        self._open: List[ActiveFault] = []

    def open(self, kind: str, detail: str, tick: int) -> ActiveFault:
        fault = ActiveFault(fault_id=len(self.faults), kind=kind,
                            detail=detail, opened_tick=tick)
        self.faults.append(fault)
        self._open.append(fault)
        return fault

    def close(self, fault: ActiveFault, tick: int, survived: bool) -> None:
        if fault.closed_tick is not None:
            raise ModelError(f"fault {fault.label} already closed")
        fault.closed_tick = tick
        fault.survived = survived
        self._open.remove(fault)

    def active(self) -> List[ActiveFault]:
        return list(self._open)

    def active_labels(self) -> List[str]:
        """Sorted labels of the currently open faults."""
        return sorted(fault.label for fault in self._open)

    def injected_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for fault in self.faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    def survived_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for fault in self.faults:
            if fault.survived:
                counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    @property
    def injected(self) -> int:
        return len(self.faults)

    @property
    def survived(self) -> int:
        return sum(1 for fault in self.faults if fault.survived)

    def to_dicts(self) -> List[dict]:
        return [fault.to_dict() for fault in self.faults]


# ---------------------------------------------------------------- the scheduler


class Nemesis:
    """Seeded fault scheduler over a :class:`NemesisProfile`.

    One shared :class:`random.Random` drives both the kind draws and
    every executor's parameter draws (victim disks, log offsets, shard
    subsets), so the full executed schedule — not just the kind
    sequence — replays byte-identically for a given seed.
    """

    def __init__(self, profile, seed: int = 0) -> None:
        self.profile = resolve_profile(profile)
        self.seed = seed
        self.rng = random.Random(("nemesis", seed, self.profile.name).__repr__())
        self.schedule: List[dict] = []
        self._cycle: List[str] = []

    def draw(self, eligible) -> Optional[str]:
        """Draw the next fault kind among ``eligible`` kinds.

        Weighted draw without replacement within a coverage cycle: the
        cycle starts as every enabled kind; each draw removes the drawn
        kind; when no cycle member is currently eligible the cycle
        refills.  Kinds that stay ineligible (e.g. ``shard_kill`` at
        K=1) simply never leave the cycle and never block it.  Returns
        None when the profile enables no eligible kind at all.
        """
        eligible = set(eligible)
        pool = [kind for kind in self._cycle if kind in eligible]
        if not pool:
            self._cycle = self.profile.enabled_kinds()
            pool = [kind for kind in self._cycle if kind in eligible]
            if not pool:
                return None
        weights = [self.profile.weights[kind] for kind in pool]
        kind = self.rng.choices(pool, weights=weights, k=1)[0]
        self._cycle.remove(kind)
        return kind

    def record(self, tick: int, kind: str, params: dict,
               outcome: str) -> dict:
        """Append one executed action to the schedule and return it."""
        action = {"index": len(self.schedule), "tick": tick, "kind": kind,
                  "params": dict(params), "outcome": outcome}
        self.schedule.append(action)
        return action
