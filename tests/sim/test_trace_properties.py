"""Property tests for the workload-trace wire format.

``script_from_json ∘ script_to_json`` must be the identity on any
:class:`TransactionScript`, and malformed lines must fail loudly with
:class:`ModelError` — a silently mangled trace would replay the wrong
workload forever.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.sim.trace import script_from_json, script_to_json
from repro.sim.workload import Access, TransactionScript

scripts = st.builds(
    TransactionScript,
    accesses=st.lists(
        st.builds(Access, page=st.integers(0, 10_000), update=st.booleans()),
        max_size=30),
    is_update=st.booleans(),
    wants_abort=st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(scripts)
def test_round_trip_is_identity(script):
    line = script_to_json(script)
    back = script_from_json(line)
    assert back.accesses == script.accesses
    assert back.is_update == script.is_update
    assert back.wants_abort == script.wants_abort
    # serialization is canonical: a second trip yields identical bytes
    assert script_to_json(back) == line


@pytest.mark.parametrize("line", [
    "",                                        # empty
    "not json at all",                         # not JSON
    "[]",                                      # wrong top-level type
    '{"update": true, "abort": false}',        # missing accesses
    '{"accesses": 5, "update": true, "abort": false}',      # not a list
    '{"accesses": [[1]], "update": true, "abort": false}',  # short pair
    '{"accesses": [["x", true]], "update": true, "abort": false}',
    '{"accesses": [[1, true]], "abort": false}',            # missing update
])
def test_malformed_lines_raise_model_error(line):
    with pytest.raises(ModelError):
        script_from_json(line)
