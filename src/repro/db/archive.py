"""Archive-based media recovery: the classical baseline (paper §1).

Without exploiting array redundancy, media recovery needs an **archive
copy** plus the **redo log**: periodically dump the database, and after
a disk failure restore the lost pages from the archive and roll them
forward by replaying committed after-images logged since the dump.  The
paper's point is that for large databases this is slow and the dumps are
expensive — RDA recovery rebuilds from parity instead.  This module
implements the baseline so the two can be compared on page transfers.

The dump is *action-consistent*: dirty buffer pages are flushed first
(so the archive plus the log after ``dump_lsn`` reconstructs any
committed state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RecoveryError
from ..wal.records import CommitRecord, PageAfterImage, RecordAfterEntry
from .slotted_page import SlottedPage


@dataclass
class ArchiveCopy:
    """One full dump: page payloads + the redo-log horizon."""

    pages: dict = field(default_factory=dict)
    dump_lsn: int = 0
    transfers: int = 0


class ArchiveManager:
    """Dump/restore media recovery over a :class:`~repro.db.database.Database`."""

    def __init__(self, db) -> None:
        self.db = db
        self.last_dump: ArchiveCopy | None = None

    def dump(self) -> ArchiveCopy:
        """Take an action-consistent full archive copy.

        Flushes the buffer, reads every data page (charged), and records
        the redo-log high-water mark.  Returns (and remembers) the copy.
        """
        db = self.db
        db.buffer.flush_all_dirty()
        before = db.stats.total
        copy = ArchiveCopy(dump_lsn=db.redo_log.last_lsn)
        for page in range(db.num_data_pages):
            copy.pages[page] = db.array.read_page(page)
        copy.transfers = db.stats.total - before
        self.last_dump = copy
        return copy

    def _committed_since(self, dump_lsn: int) -> list:
        """Committed after-images logged after the dump, in LSN order."""
        winners = {r.txn_id for r in self.db.redo_log.scan(CommitRecord)}
        out = []
        for record in self.db.redo_log.records():
            if record.lsn <= dump_lsn or record.txn_id not in winners:
                continue
            if isinstance(record, (PageAfterImage, RecordAfterEntry)):
                out.append(record)
        return out

    def restore_failed_disk(self, disk_id: int) -> int:
        """Classical media recovery of one failed disk.

        Replaces the disk, rewrites its data slots from the archive,
        rolls them forward from the redo log, and recomputes the parity
        slots from the (now complete) group data.  Returns the page
        transfers consumed.

        Raises:
            RecoveryError: if no dump exists.
        """
        db = self.db
        if db.rda is not None:
            raise RecoveryError(
                "archive restore is the non-RDA baseline; twin-parity "
                "databases rebuild from parity (Database.media_recover)")
        if self.last_dump is None:
            raise RecoveryError("no archive dump available")
        copy = self.last_dump
        before = db.stats.total
        replay = self._committed_since(copy.dump_lsn)
        db.redo_log.charge_read(replay)
        disk = db.array.disks[disk_id]
        disk.replace()

        lost_pages = {page: slot
                      for slot, page in db.array.geometry.pages_on_disk(disk_id)}
        restored = {page: copy.pages[page] for page in lost_pages}
        for record in replay:
            if record.page_id not in restored:
                continue
            if isinstance(record, PageAfterImage):
                restored[record.page_id] = record.image
            else:
                sp = SlottedPage.from_bytes(restored[record.page_id])
                if record.image == b"":
                    try:
                        sp.delete(record.slot)
                    except KeyError:
                        pass
                else:
                    sp.place(record.slot, record.image)
                restored[record.page_id] = sp.to_bytes()
        for page, payload in restored.items():
            disk.write(lost_pages[page], payload)

        for group in db.array.geometry.groups_with_parity_on(disk_id):
            db.array._rebuild_parity_slot(disk_id, group)
        return db.stats.total - before
