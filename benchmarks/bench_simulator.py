"""Live-system throughput table: the executable analogue of Figures 9-12.

Runs the same synthetic workload through all eight database
configurations and prints measured throughput (transactions per 5x10^6
page transfers, the paper's unit).  The *shape* must match the model:
RDA ≥ baseline in every discipline, with the big win under page
logging + FORCE.
"""

from repro.db import Database, all_preset_names, preset
from repro.sim import Simulator, WorkloadSpec

from .conftest import write_table

SPEC = WorkloadSpec(concurrency=4, pages_per_txn=6, update_txn_fraction=0.8,
                    update_probability=0.9, abort_probability=0.01,
                    communality=0.7)
SIZES = dict(group_size=5, num_groups=30, buffer_capacity=40)


def run_preset(name: str, transactions: int = 150, seed: int = 31):
    overrides = dict(SIZES)
    if "noforce" in name:
        overrides["checkpoint_interval"] = 400
    db = Database(preset(name, **overrides))
    sim = Simulator(db, SPEC, seed=seed)
    if sim.record_mode:
        sim.seed_records()
    report = sim.run(transactions)
    assert db.verify_parity() == []
    return report


def test_live_system_throughput_table(benchmark, results_dir):
    def campaign():
        return {name: run_preset(name) for name in all_preset_names()
                if name.startswith("page")}

    reports = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = ["Live-system throughput (page modes), txns per 5e6 transfers",
             f"{'configuration':>20} | {'throughput':>12} | {'c/txn':>7} "
             f"| {'unlogged steals':>15}"]
    for name, report in sorted(reports.items()):
        lines.append(f"{name:>20} | {report.throughput():12.0f} "
                     f"| {report.cost_per_transaction():7.1f} "
                     f"| {report.unlogged_steal_fraction:15.2f}")
    write_table(results_dir, "live_throughput", "\n".join(lines))

    # shape: RDA beats its baseline in both disciplines
    assert reports["page-force-rda"].throughput() > \
        reports["page-force-log"].throughput()
    assert reports["page-noforce-rda"].throughput() >= \
        reports["page-noforce-log"].throughput() * 0.98
    benchmark.extra_info["throughput"] = {
        name: round(r.throughput()) for name, r in reports.items()}


def test_live_system_record_modes(benchmark, results_dir):
    def campaign():
        return {name: run_preset(name, transactions=100)
                for name in all_preset_names() if name.startswith("record")}

    reports = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = ["Live-system throughput (record modes)"]
    for name, report in sorted(reports.items()):
        lines.append(f"{name:>22}: {report.throughput():12.0f}")
    write_table(results_dir, "live_throughput_record", "\n".join(lines))
    assert all(r.committed > 0 for r in reports.values())
