"""Tests for the TWIST twin-page store (the paper's reference [12])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParityGroupError
from repro.storage import make_page
from repro.storage.page import PAGE_SIZE
from repro.twist import TwistStore


@pytest.fixture
def store():
    store = TwistStore(num_pages=8, num_disks=4)
    store.load({p: make_page(bytes([p + 1])) for p in range(8)})
    return store


class TestBasics:
    def test_load_and_read(self, store):
        assert store.read(0) == make_page(1)
        assert store.read_committed(0) == make_page(1)

    def test_unloaded_page_zero(self):
        store = TwistStore(num_pages=2)
        assert store.read(0) == bytes(PAGE_SIZE)

    def test_write_visible_to_reader(self, store):
        store.write(0, make_page(b"new"), txn_id=1)
        assert store.read(0) == make_page(b"new")
        assert store.read_committed(0) == make_page(1)

    def test_twins_on_distinct_disks(self, store):
        for page in range(store.num_pages):
            d0, _ = store._address(page, 0)
            d1, _ = store._address(page, 1)
            assert d0 != d1

    def test_validation(self):
        with pytest.raises(ValueError):
            TwistStore(0)
        with pytest.raises(ValueError):
            TwistStore(4, num_disks=1)
        store = TwistStore(4)
        with pytest.raises(ValueError):
            store.read(99)
        with pytest.raises(ValueError):
            store.write(0, b"small", 1)

    def test_second_uncommitted_writer_rejected(self, store):
        store.write(0, make_page(b"a"), txn_id=1)
        with pytest.raises(ParityGroupError):
            store.write(0, make_page(b"b"), txn_id=2)

    def test_same_txn_rewrites(self, store):
        store.write(0, make_page(b"a"), txn_id=1)
        store.write(0, make_page(b"b"), txn_id=1)
        assert store.read(0) == make_page(b"b")


class TestCosts:
    def test_write_is_single_transfer(self, store):
        with store.stats.window() as w:
            store.write(0, make_page(b"x"), txn_id=1)
        assert w.total == 1      # no parity: TWIST's write advantage

    def test_commit_and_abort_are_free(self, store):
        store.write(0, make_page(b"x"), txn_id=1)
        with store.stats.window() as w:
            store.commit(1)
        assert w.total == 0
        store.write(0, make_page(b"y"), txn_id=2)
        with store.stats.window() as w:
            store.abort(2)
        assert w.total == 0

    def test_storage_overhead_is_100_percent(self, store):
        """The number RDA recovery undercuts: 2x vs (N+2)/(N+1)x."""
        assert store.storage_overhead() == 0.5


class TestEOT:
    def test_commit_publishes(self, store):
        store.write(0, make_page(b"x"), txn_id=1)
        assert store.commit(1) == [0]
        assert store.read_committed(0) == make_page(b"x")

    def test_abort_reverts(self, store):
        store.write(0, make_page(b"x"), txn_id=1)
        assert store.abort(1) == [0]
        assert store.read(0) == make_page(1)
        assert store.uncommitted_pages() == []

    def test_unknown_txn_noop(self, store):
        assert store.commit(42) == []
        assert store.abort(42) == []

    def test_alternating_transactions(self, store):
        for round_ in range(6):
            txn = round_ + 10
            store.write(3, make_page(round_ + 50), txn_id=txn)
            store.commit(txn)
        assert store.read(3) == make_page(55)

    def test_multi_page_transaction(self, store):
        store.write(0, make_page(b"a"), txn_id=1)
        store.write(5, make_page(b"b"), txn_id=1)
        store.abort(1)
        assert store.read(0) == make_page(1)
        assert store.read(5) == make_page(6)


class TestCrash:
    def test_committed_survives(self, store):
        store.write(0, make_page(b"keep"), txn_id=1)
        store.commit(1)
        store.crash()
        stats = store.recover(committed_txns={1})
        assert stats["losers"] == []
        assert store.read(0) == make_page(b"keep")

    def test_loser_rolled_back(self, store):
        store.write(0, make_page(b"gone"), txn_id=2)
        store.crash()
        stats = store.recover(committed_txns=set())
        assert stats["losers"] == [2]
        assert store.read(0) == make_page(1)

    def test_mixed_outcome(self, store):
        store.write(0, make_page(b"win"), txn_id=1)
        store.commit(1)
        store.write(1, make_page(b"lose"), txn_id=2)
        store.crash()
        store.recover(committed_txns={1})
        assert store.read(0) == make_page(b"win")
        assert store.read(1) == make_page(2)

    def test_recover_scan_cost(self, store):
        store.crash()
        with store.stats.window() as w:
            store.recover(committed_txns=set())
        assert w.reads == 2 * store.num_pages

    def test_sequence_of_commits_then_crash(self, store):
        """The bit map alternates; recovery must land on the newest
        committed twin, not merely a committed one."""
        for round_ in range(4):
            txn = 100 + round_
            store.write(0, make_page(round_ + 60), txn_id=txn)
            store.commit(txn)
        store.crash()
        store.recover(committed_txns={100, 101, 102, 103})
        assert store.read(0) == make_page(63)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_twist_atomicity_property(data):
    """Property: the committed view equals the serial application of
    committed transactions, across aborts and crashes."""
    store = TwistStore(num_pages=5, num_disks=3)
    store.load({p: make_page(p + 1) for p in range(5)})
    expected = {p: make_page(p + 1) for p in range(5)}
    committed_txns = set()
    next_txn = [1]
    for _ in range(data.draw(st.integers(1, 15), label="rounds")):
        action = data.draw(st.sampled_from(["txn", "crash"]), label="action")
        if action == "crash":
            store.crash()
            store.recover(committed_txns=committed_txns)
            continue
        txn = next_txn[0]
        next_txn[0] += 1
        writes = {}
        for _ in range(data.draw(st.integers(1, 3), label="writes")):
            page = data.draw(st.integers(0, 4), label="page")
            if page in store.uncommitted_pages() and page not in writes:
                continue
            payload = data.draw(st.binary(min_size=PAGE_SIZE,
                                          max_size=PAGE_SIZE), label="bytes")
            store.write(page, payload, txn_id=txn)
            writes[page] = payload
        if data.draw(st.booleans(), label="commit?"):
            store.commit(txn)
            committed_txns.add(txn)
            expected.update(writes)
        else:
            store.abort(txn)
    for page, payload in expected.items():
        assert store.read_committed(page) == payload
