"""Phased mixed workload for continuous chaos runs.

A soak should not hammer one access pattern: the paper's two
environments (high-update and high-retrieval, Section 5) stress
different recovery costs, and skewed point writes stress the twin
array's hot arms in ways a uniform mix never does.  A
:class:`StressWorkload` therefore rotates through :class:`StressPhase`
segments — hot/cold Zipf point writes, large scan-like read
transactions, a mixed multi-transaction phase — re-entering each phase
round-robin for as long as the run lasts.

Each phase owns one :class:`~repro.sim.simulator.Simulator` (created on
first entry, *reused* on every revisit so its
:class:`~repro.sim.workload.WorkloadGenerator` stream continues instead
of restarting), with a per-phase seed derived deterministically from
the base seed.  Against a :class:`~repro.db.sharded.ShardedDatabase`
the page space spans all K shards, so every phase naturally issues
multi-shard transactions; the scan phase's 32-page scripts are all but
guaranteed to cross shard boundaries.

A *batch* — the unit between two nemesis ticks — always ends quiesced:
``Simulator.run`` commits or aborts every in-flight transaction before
returning, so the nemesis may crash, fail disks, or kill shards without
racing an open transaction, and the differential mirror's committed
state is well-defined at every judgment point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..sim.simulator import Simulator
from ..sim.workload import WorkloadSpec


@dataclass(frozen=True)
class StressPhase:
    """One workload regime in the rotation.

    Args:
        name: phase label (appears in the stress report).
        spec: the workload knobs driven while this phase is active.
        batches: consecutive batches run before rotating on.
    """

    name: str
    spec: WorkloadSpec
    batches: int = 2

    def __post_init__(self) -> None:
        if self.batches < 1:
            raise ModelError("phase batches must be >= 1")


def default_phases() -> List[StressPhase]:
    """The standard three-regime rotation.

    * ``hot-writes`` — skewed (Zipf 1.1) point updates: the high-update
      environment concentrated on a hot set, maximizing twin/parity
      churn on few arms.
    * ``scan-reads`` — 32-page read-mostly transactions with low
      communality: long scripts that sweep cold pages through the
      buffer (and span shards when K > 1).
    * ``mixed`` — the paper's high-update environment as-is, uniform.
    """
    return [
        StressPhase(
            name="hot-writes",
            spec=WorkloadSpec(concurrency=4, pages_per_txn=6,
                              update_txn_fraction=0.9,
                              update_probability=0.9,
                              abort_probability=0.02,
                              communality=0.3, skew=1.1)),
        StressPhase(
            name="scan-reads",
            spec=WorkloadSpec(concurrency=3, pages_per_txn=32,
                              update_txn_fraction=0.1,
                              update_probability=0.3,
                              abort_probability=0.01,
                              communality=0.1, skew=0.0)),
        StressPhase(
            name="mixed",
            spec=WorkloadSpec(concurrency=6, pages_per_txn=10,
                              update_txn_fraction=0.8,
                              update_probability=0.9,
                              abort_probability=0.01,
                              communality=0.5, skew=0.0)),
    ]


class StressWorkload:
    """Rotating phased driver over one database.

    Args:
        db: engine under stress (single or sharded).
        phases: the rotation; defaults to :func:`default_phases`.
        seed: base seed; phase ``i`` gets generator seed
            ``seed * 1000 + i`` so phases draw independent streams.
        conformance: optional shared mirror observing every phase's
            operation stream (txn ids are globally unique, so one
            mirror serves all phase simulators).
    """

    def __init__(self, db, phases: Optional[Sequence[StressPhase]] = None,
                 seed: int = 0, conformance=None) -> None:
        self.db = db
        self.phases = list(phases) if phases is not None else default_phases()
        if not self.phases:
            raise ModelError("stress workload needs at least one phase")
        self.seed = seed
        self.conformance = conformance
        self._sims: List[Optional[Simulator]] = [None] * len(self.phases)
        self._index = 0
        self._in_phase = 0
        self.batches_run = 0
        self.phase_batches: dict = {phase.name: 0 for phase in self.phases}

    @property
    def current_phase(self) -> StressPhase:
        return self.phases[self._index]

    def _simulator(self, index: int) -> Simulator:
        sim = self._sims[index]
        if sim is None:
            sim = Simulator(self.db, self.phases[index].spec,
                            seed=self.seed * 1000 + index,
                            conformance=self.conformance)
            self._sims[index] = sim
        return sim

    def run_batch(self, batch_size: int) -> Tuple[str, int, int]:
        """Run one quiesced batch in the current phase, then maybe rotate.

        Returns ``(phase_name, committed_delta, aborted_delta)``.
        """
        if batch_size < 1:
            raise ModelError("batch_size must be >= 1")
        phase = self.current_phase
        sim = self._simulator(self._index)
        committed0, aborted0 = sim.report.committed, sim.report.aborted
        sim.run(sim.report.transactions + batch_size)
        self.batches_run += 1
        self.phase_batches[phase.name] += 1
        self._in_phase += 1
        if self._in_phase >= phase.batches:
            self._in_phase = 0
            self._index = (self._index + 1) % len(self.phases)
        return (phase.name, sim.report.committed - committed0,
                sim.report.aborted - aborted0)

    @property
    def committed(self) -> int:
        return sum(sim.report.committed for sim in self._sims if sim)

    @property
    def aborted(self) -> int:
        return sum(sim.report.aborted for sim in self._sims if sim)

    @property
    def deadlocks(self) -> int:
        return sum(sim.report.deadlocks for sim in self._sims if sim)
