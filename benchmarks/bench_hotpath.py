"""Hot-path benchmark: engine throughput before/after commit-window batching.

BENCH_kernels.json pins the XOR/GF(256) kernels at sub-microsecond per
page while BENCH_shards.json showed the whole engine near ~4k txns/sec:
per-operation Python overhead, not parity math, dominated every
simulate run.  This benchmark measures the quantity the batched hot
path exists to move — **committed transactions per wall-clock second**
— on the same seeded workloads before and after the pooled-page /
commit-window-batching engine, and records the trajectory into
``BENCH_hotpath.json``.

Three presets are measured:

* ``page-force-rda``   — the paper's headline cell: FORCE commits flush
  every dirty page through the twin-parity small-write protocol, so the
  commit window is where batching pays.
* ``record-force-rda`` — same discipline at record granularity (adds
  slotted-page parsing to the hot path).
* ``page-noforce-rda`` — ¬FORCE/ACC: write-backs happen at checkpoints
  and evictions instead of commit, a deliberately batching-hostile cell.

A fourth leg re-runs ``page-force-rda`` with live observability (a
buffered JSONL sink plus a metrics registry) and reports the sinks-ON
overhead ratio — the coalesced-dispatch guard (must stay under
``MAX_SINKS_ON_OVERHEAD``).

``SEED_TXNS_PER_SEC`` holds the throughput measured on the pre-batching
engine (commit 48b7f99 lineage) on the reference container, captured by
running this same harness before any hot-path change.

**Honest numbers.**  The issue's 10x aspiration is recorded as
``SPEEDUP_TARGET`` and reported, but it is not reachable on this
engine: the byte-identical-semantics envelope (same disk writes in the
same order, same transfer accounting, same per-page barrier/history
hooks) pins ~955 Python calls per transaction, and the profile is flat
— no single hotspot holds more than ~17% of the run.  Batching and the
micro-optimisation pass bought ~1.3-1.7x on the FORCE presets; the
gates below enforce what the engine actually achieves so a regression
is caught without pretending to a number that was never measured:

* the CI smoke floor: ``page-force-rda`` >= ``CI_FLOOR_RATIO`` x seed;
* every preset's parity scrub comes back clean;
* sinks-ON overhead <= ``MAX_SINKS_ON_OVERHEAD``.

Run standalone (``python benchmarks/bench_hotpath.py [--quick]
[--profile]``) or via pytest (``pytest benchmarks/bench_hotpath.py``).
``--profile`` wraps the ``page-force-rda`` leg in cProfile and prints
the top cumulative hot spots instead of timing it.
"""

from __future__ import annotations

import cProfile
import json
import pathlib
import platform
import pstats
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.db import Database, preset                          # noqa: E402
from repro.obs import BufferedJsonlSink, MetricsRegistry, Tracer  # noqa: E402
from repro.sim import Simulator, WorkloadSpec                  # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "hotpath_perf.json"
ROOT_TRAJECTORY_PATH = (pathlib.Path(__file__).parent.parent
                        / "BENCH_hotpath.json")

TRANSACTIONS = 1200
QUICK_TRANSACTIONS = 300
WARMUP_TRANSACTIONS = 60

# 24 groups x (5-1) data pages = 96 data pages; the buffer holds most of
# the working set so the commit-window flush (not eviction churn) is the
# dominant write-back path, as in the paper's FORCE analysis
OVERRIDES = dict(group_size=5, num_groups=24, buffer_capacity=64)

SPEC = WorkloadSpec(concurrency=4, pages_per_txn=6,
                    update_txn_fraction=0.9, update_probability=0.9,
                    abort_probability=0.02, communality=0.5)

SEED = 7

PRESETS = ("page-force-rda", "record-force-rda", "page-noforce-rda")

# the FORCE cells batching targets; speedups reported for the trajectory
HEADLINE_PRESETS = ("page-force-rda", "record-force-rda")

SPEEDUP_TARGET = 10.0       # the issue's aspiration; reported, not gated —
#                             see the honest-numbers note in the docstring
CI_FLOOR_RATIO = 1.15       # CI smoke: fail below 1.15x seed on page-force-rda
# Full observability (buffered JSONL sink + metrics registry) measures
# ~25-45% over sinks-off on this engine: ~5.8k events per 1200-txn run
# at ~8µs/event of build+encode cost against a ~0.3s run, on a container
# with ±15% timing noise.  Coalesced dispatch (batched window events,
# chunked writes, cached label children) brought this down from >50%;
# the guard catches regressions back above that line.
MAX_SINKS_ON_OVERHEAD = 0.50
SINKS_ON_PAIRS = 3          # alternating off/on pairs; min/min kills noise
TRIALS = 3                  # timed runs per preset cell; best-of is reported

# Throughput of the pre-batching engine, measured with this harness on
# the unmodified seed tree (same container class as CI).  These are the
# denominators every later run is judged against — do not re-measure
# them on a faster engine.
SEED_TXNS_PER_SEC = {
    "page-force-rda": 2365.6,
    "record-force-rda": 2569.5,
    "page-noforce-rda": 3857.8,
}


def _build(preset_name: str, tracer=None, metrics=None) -> Database:
    overrides = dict(OVERRIDES)
    if "noforce" in preset_name:
        overrides["checkpoint_interval"] = 400
    return Database(preset(preset_name, **overrides), tracer=tracer,
                    metrics=metrics)


def _drive(db: Database, transactions: int) -> tuple:
    """Run the seeded workload; returns (report, wall_seconds)."""
    simulator = Simulator(db, SPEC, seed=SEED)
    if simulator.record_mode:
        simulator.seed_records()
    started = time.perf_counter()
    report = simulator.run(transactions)
    return report, time.perf_counter() - started


def run_preset(preset_name: str, transactions: int) -> dict:
    """One preset cell: warmed, best-of-``TRIALS`` timed, scrubbed.

    A single timed run is at the mercy of ±15-20% container noise —
    noise only ever *adds* time, so the fastest of a few trials is the
    closest observable to the true rate (same reasoning as the sinks-ON
    guard's min-of-pairs).
    """
    _drive(_build(preset_name), WARMUP_TRANSACTIONS)       # warm the caches
    best_elapsed = float("inf")
    best_report = None
    db = None
    for _ in range(TRIALS):
        db = _build(preset_name)
        report, elapsed = _drive(db, transactions)
        if elapsed < best_elapsed:
            best_elapsed, best_report = elapsed, report
    scrub = db.verify_parity()
    report = best_report
    txns_per_sec = report.committed / max(best_elapsed, 1e-9)
    seed_rate = SEED_TXNS_PER_SEC.get(preset_name)
    cell = {
        "preset": preset_name,
        "transactions": transactions,
        "trials": TRIALS,
        "committed": report.committed,
        "aborted": report.aborted,
        "page_transfers": report.page_transfers,
        "wall_seconds": round(best_elapsed, 4),
        "txns_per_second": round(txns_per_sec, 1),
        "parity_scrub_clean": not scrub,
    }
    if seed_rate is not None:
        cell["seed_txns_per_second"] = seed_rate
        cell["speedup_vs_seed"] = round(txns_per_sec / seed_rate, 2)
    return cell


def run_sinks_on(transactions: int) -> dict:
    """The coalesced-observability guard: page-force-rda with a live
    buffered JSONL sink + metrics registry vs the same run sinks-off.

    Container timing noise (±15%) swamps a single off/on pair, so the
    guard runs ``SINKS_ON_PAIRS`` alternating pairs and compares the
    best (minimum) time of each side: noise only ever adds time, so the
    minima are the closest observable to the true cost.
    """
    best_off = best_on = float("inf")
    events = 0
    for _ in range(SINKS_ON_PAIRS):
        _, base_elapsed = _drive(_build("page-force-rda"), transactions)
        best_off = min(best_off, base_elapsed)
        with tempfile.NamedTemporaryFile(suffix=".jsonl",
                                         delete=False) as handle:
            trace_path = handle.name
        tracer = Tracer(BufferedJsonlSink(trace_path))
        metrics = MetricsRegistry()
        db = _build("page-force-rda", tracer=tracer, metrics=metrics)
        report, traced_elapsed = _drive(db, transactions)
        tracer.close()
        pathlib.Path(trace_path).unlink(missing_ok=True)
        best_on = min(best_on, traced_elapsed)
        events = tracer.events_emitted
    overhead = best_on / max(best_off, 1e-9) - 1.0
    return {
        "preset": "page-force-rda",
        "transactions": transactions,
        "pairs": SINKS_ON_PAIRS,
        "events_emitted": events,
        "sinks_off_seconds": round(best_off, 4),
        "sinks_on_seconds": round(best_on, 4),
        "sinks_on_overhead": round(overhead, 4),
        "max_overhead": MAX_SINKS_ON_OVERHEAD,
        "ok": overhead <= MAX_SINKS_ON_OVERHEAD,
    }


def profile_hotpath(transactions: int, stats_out: str | None = None,
                    top: int = 20) -> None:
    """cProfile the page-force-rda leg and print the top hot spots."""
    db = _build("page-force-rda")
    profiler = cProfile.Profile()
    profiler.enable()
    _drive(db, transactions)
    profiler.disable()
    if stats_out is not None:
        profiler.dump_stats(stats_out)
        print(f"[profile stats -> {stats_out}]")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def run(quick: bool = False) -> dict:
    transactions = QUICK_TRANSACTIONS if quick else TRANSACTIONS
    cells = [run_preset(name, transactions) for name in PRESETS]
    by_name = {cell["preset"]: cell for cell in cells}
    obs_guard = run_sinks_on(transactions)

    speedups = {name: by_name[name].get("speedup_vs_seed")
                for name in HEADLINE_PRESETS}
    have_seed = all(rate is not None for rate in SEED_TXNS_PER_SEC.values())
    headline_ok = have_seed and all(
        ratio is not None and ratio >= SPEEDUP_TARGET
        for ratio in speedups.values())
    floor_cell = by_name["page-force-rda"]
    floor_ok = (have_seed
                and floor_cell.get("speedup_vs_seed", 0.0) >= CI_FLOOR_RATIO)
    scrub_ok = all(cell["parity_scrub_clean"] for cell in cells)
    return {
        "benchmark": "hot-path engine: txns/sec before/after "
                     "commit-window batching",
        "overrides": OVERRIDES,
        "workload": {
            "concurrency": SPEC.concurrency,
            "pages_per_txn": SPEC.pages_per_txn,
            "update_txn_fraction": SPEC.update_txn_fraction,
            "update_probability": SPEC.update_probability,
            "abort_probability": SPEC.abort_probability,
            "communality": SPEC.communality,
            "seed": SEED,
        },
        "transactions": transactions,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed_txns_per_second": dict(SEED_TXNS_PER_SEC),
        "cells": cells,
        "observability_guard": obs_guard,
        "acceptance": {
            "criterion": f"page-force-rda >= {CI_FLOOR_RATIO}x seed "
                         f"txns/sec; parity scrub clean; sinks-ON "
                         f"overhead <= {MAX_SINKS_ON_OVERHEAD:.0%} "
                         f"({SPEEDUP_TARGET:.0f}x target reported, "
                         f"not gated)",
            "speedups": speedups,
            "speedup_target": SPEEDUP_TARGET,
            "speedup_target_met": headline_ok,
            "ci_floor": {
                "preset": "page-force-rda",
                "min_ratio": CI_FLOOR_RATIO,
                "ok": floor_ok,
            },
            "parity_scrub_clean": scrub_ok,
            "sinks_on_ok": obs_guard["ok"],
            "ok": floor_ok and scrub_ok and obs_guard["ok"],
        },
    }


def write_results(doc: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    for path in (RESULTS_PATH, ROOT_TRAJECTORY_PATH):
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def test_hotpath_regression_floor():
    """pytest/CI entry: quick run; the batched engine must stay above
    the regression floor on page-force-rda and keep sinks-ON overhead
    within the guard."""
    doc = run(quick=True)
    write_results(doc)
    assert doc["acceptance"]["ci_floor"]["ok"], (
        "hot-path throughput fell below the CI floor "
        f"({CI_FLOOR_RATIO}x seed on page-force-rda): "
        f"{doc['acceptance']}")
    assert doc["acceptance"]["parity_scrub_clean"], doc["acceptance"]
    assert doc["acceptance"]["sinks_on_ok"], doc["observability_guard"]


def main() -> int:
    argv = sys.argv[1:]
    if "--profile" in argv:
        quick = "--quick" in argv
        profile_hotpath(QUICK_TRANSACTIONS if quick else TRANSACTIONS)
        return 0
    quick = "--quick" in argv
    doc = run(quick=quick)
    write_results(doc)
    print(json.dumps(doc, indent=2))
    print(f"\n[written to {RESULTS_PATH} and {ROOT_TRAJECTORY_PATH}]")
    if not doc["acceptance"]["ok"]:
        print("FAIL: hot-path acceptance not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
