"""``inspect-trace`` over sharded, batched traces.

The sharded engine emits coalesced ``array.small_write_batch`` window
events (and ``rda.commit`` events carrying ``groups``) instead of one
event per page.  :func:`aggregate_events` expands those back into the
model-priced per-operation variants; these tests pin the contract that
the expansion prices a batched trace *identically* to a legacy per-op
trace of the same workload.
"""

import pytest

from repro.db import ShardedDatabase, preset
from repro.obs import (RingBufferSink, Tracer, aggregate_events, event_key,
                       model_expectation)
from repro.sim import Simulator, WorkloadSpec

SMALL_WRITE_VARIANTS = ("array.small_write[buffered=True,twins=1]",
                        "array.small_write[buffered=False,twins=1]")


def legacy_expansion(events):
    """Rewrite a batched trace as the per-op trace the engine emitted
    before window coalescing: one ``array.small_write`` per page at the
    model's exact prices, one ``rda.twin_flip``/``rda.group_dirty`` per
    flipped/newly-dirty group."""
    legacy = []
    for event in events:
        attrs = dict(event.get("attrs") or {})
        name = event["name"]
        if name == "array.small_write_batch":
            buffered = attrs.get("buffered_pages", 0)
            plain = attrs.get("pages", 0) - buffered
            for _ in range(buffered):
                legacy.append({"name": "array.small_write",
                               "attrs": {"buffered": True, "twins": 1,
                                         "reads": 1, "writes": 2,
                                         "transfers": 3}})
            for _ in range(plain):
                legacy.append({"name": "array.small_write",
                               "attrs": {"buffered": False, "twins": 1,
                                         "reads": 2, "writes": 2,
                                         "transfers": 4}})
            for _ in range(attrs.get("first_steals", 0)):
                legacy.append({"name": "rda.group_dirty", "attrs": {}})
            continue
        if name == "rda.commit":
            for _ in range(attrs.get("groups", 0)):
                legacy.append({"name": "rda.twin_flip",
                               "attrs": {"reads": 0, "writes": 0,
                                         "transfers": 0}})
            attrs.pop("groups", None)
            legacy.append({"name": name, "attrs": attrs})
            continue
        legacy.append(event)
    return legacy


@pytest.fixture(scope="module", params=[2, 4])
def traces(request):
    """(batched trace, legacy per-op trace) for one sharded run."""
    tracer = Tracer(RingBufferSink())
    db = ShardedDatabase(preset("page-force-rda", group_size=4,
                                num_groups=16, buffer_capacity=12),
                         shards=request.param, tracer=tracer)
    simulator = Simulator(db, WorkloadSpec(concurrency=3, pages_per_txn=3),
                          seed=5)
    simulator.run(40)
    events = tracer.sink._buffer
    batched = list(events)
    return batched, legacy_expansion(batched)


def test_sharded_run_emits_batched_events(traces):
    batched, _ = traces
    names = [e["name"] for e in batched]
    assert "array.small_write_batch" in names
    # the commit-window hot path is coalesced: per-op small writes may
    # still appear from unwindowed paths (abort, forced undo) but the
    # windowed bulk must ride the batch events
    assert names.count("array.small_write_batch") > \
        names.count("array.small_write")


def test_batch_expansion_prices_like_legacy_trace(traces):
    batched, legacy = traces
    rows = aggregate_events(batched)
    legacy_rows = aggregate_events(legacy)
    for variant in SMALL_WRITE_VARIANTS:
        if variant not in legacy_rows:
            continue
        for field in ("count", "reads", "writes", "transfers",
                      "mean_transfers", "model"):
            assert rows[variant][field] == legacy_rows[variant][field], \
                (variant, field)


def test_expanded_variants_match_model_exactly(traces):
    batched, _ = traces
    rows = aggregate_events(batched)
    assert rows["array.small_write[buffered=True,twins=1]"][
        "mean_transfers"] == 3.0
    if "array.small_write[buffered=False,twins=1]" in rows:
        assert rows["array.small_write[buffered=False,twins=1]"][
            "mean_transfers"] == 4.0
    assert rows["rda.twin_flip"]["mean_transfers"] == 0.0


def test_bookkeeping_rows_match_legacy(traces):
    batched, legacy = traces
    rows = aggregate_events(batched)
    legacy_rows = aggregate_events(legacy)
    for marker in ("rda.twin_flip", "rda.group_dirty"):
        if marker in legacy_rows or marker in rows:
            assert rows[marker]["count"] == legacy_rows[marker]["count"]


def test_shard_label_does_not_split_variants(traces):
    """The ``shard`` attr labels events but is not a VARIANT_KEY: a
    K-way trace aggregates into the same per-variant rows as K=1."""
    batched, _ = traces
    for event in batched:
        attrs = event.get("attrs") or {}
        key = event_key(event["name"], attrs)
        assert "shard=" not in key


def test_model_expectation_prefix_matches_expanded_keys():
    assert model_expectation(
        "array.small_write[buffered=True,twins=1]") == "3"
    assert model_expectation(
        "array.small_write[buffered=False,twins=1]") == "4"
    assert model_expectation("rda.twin_flip") == "0"
