#!/usr/bin/env python3
"""Regenerate every evaluation figure of the paper (Figures 9-13).

Prints the data series behind each figure as plain-text tables — the
same curves the paper plots: throughput vs communality for the four
algorithm classes (±RDA, both environments) and the RDA benefit vs
transaction size.

Run:  python examples/paper_figures.py
"""

from repro.model import all_figures


def main():
    for figure in all_figures():
        print(figure.format_table())
        print()


if __name__ == "__main__":
    main()
