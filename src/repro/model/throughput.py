"""Throughput assembly (paper Section 5, Reuter's framework).

Given per-transaction costs, throughput over an availability interval of
``T`` page transfers is

    r_t = (T - c_s - c_c * n_cp) / c_E,

where ``c_E = (1 - f_u) c_r + f_u c_u`` is the mean transaction cost,
``c_s`` the crash-recovery cost paid once per interval, and
``n_cp = (T - c_s - I/2) / I`` the number of checkpoints (zero for
FORCE/TOC, which needs none).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError


@dataclass(frozen=True)
class CostBreakdown:
    """Every intermediate of one algorithm/environment evaluation.

    All costs are in page transfers; ``throughput`` is transactions per
    availability interval.
    """

    algorithm: str
    rda: bool
    c_r: float            # retrieval-transaction cost
    c_u: float            # update-transaction cost
    c_l: float            # logging component of c_u
    c_b: float            # transaction-backout cost (paid with p_b)
    c_c: float            # checkpoint cost (0 under FORCE/TOC)
    c_s: float            # crash-recovery cost per availability interval
    checkpoint_interval: float | None   # optimal I (None under FORCE/TOC)
    p_l: float            # logging probability (1.0 for non-RDA baselines)
    c_E: float            # mean cost per transaction
    throughput: float     # r_t

    def describe(self) -> str:
        """One-line digest for harness output."""
        tag = "RDA" if self.rda else "¬RDA"
        return (f"{self.algorithm} [{tag}]  c_E={self.c_E:8.2f}  "
                f"p_l={self.p_l:5.3f}  r_t={self.throughput:10.0f}")


def mean_transaction_cost(f_u: float, c_r: float, c_u: float) -> float:
    """c_E = (1 - f_u) * c_r + f_u * c_u."""
    return (1.0 - f_u) * c_r + f_u * c_u


def interval_throughput(T: float, c_E: float, c_s: float = 0.0,
                        c_c: float = 0.0,
                        interval: float | None = None) -> float:
    """Transactions completed in one availability interval.

    With no checkpointing (``c_c == 0`` or ``interval is None``) this is
    (T - c_s) / c_E; otherwise checkpoint overhead is subtracted, with
    the crash assumed to land mid-interval (the paper's (T - c_s - I/2)/I
    checkpoint count).
    """
    if c_E <= 0:
        raise ModelError("mean transaction cost must be positive")
    usable = T - c_s
    if c_c > 0 and interval is not None and interval > 0:
        checkpoints = max(0.0, (T - c_s - interval / 2.0) / interval)
        usable -= c_c * checkpoints
    return max(0.0, usable) / c_E
