"""Monte Carlo validation of the reliability closed forms.

The MTTDL formulas in :mod:`repro.model.reliability` are first-order
approximations.  This module simulates the underlying process —
exponential disk lifetimes, exponential repairs, data loss when failures
overlap beyond the redundancy — and estimates time-to-data-loss
empirically, so the closed forms can be sanity-checked rather than
trusted (`benchmarks/bench_montecarlo.py` does exactly that).

The simulation is a simple event race per group: draw failure times,
and on each failure test whether another failure lands inside the
repair window (twice, for double parity).
"""

from __future__ import annotations

import random

from ..errors import ModelError


def _draw_loss_time(rng: random.Random, mttf: float, disks: int, mttr: float,
                    tolerated: int) -> float:
    """One sample of time-to-data-loss for a single group tolerating
    ``tolerated`` concurrent failures."""
    clock = 0.0
    while True:
        # time to the next first-failure among `disks` healthy drives
        clock += rng.expovariate(disks / mttf)
        # during the repair window, count additional failures
        overlapping = 0
        window = mttr
        remaining = disks - 1
        while remaining > 0:
            gap = rng.expovariate(remaining / mttf)
            if gap >= window:
                break
            overlapping += 1
            if overlapping >= tolerated:
                return clock
            window -= gap
            remaining -= 1
        # repaired before exceeding tolerance; continue


def simulate_mttdl(disk_mttf: float, group_disks: int, mttr: float,
                   tolerated: int = 1, samples: int = 200,
                   seed: int = 0) -> float:
    """Mean time to data loss of one group, estimated by simulation.

    Args:
        disk_mttf: per-disk MTTF (hours).
        group_disks: drives in the group (data + parity).
        mttr: repair time (hours).
        tolerated: concurrent failures survivable (1 = RAID-5/twin,
            2 = RAID-6).
        samples: Monte Carlo repetitions.
        seed: RNG seed.
    """
    if samples < 1:
        raise ModelError("need at least one sample")
    if tolerated < 1:
        raise ModelError("tolerated failures must be >= 1")
    if min(disk_mttf, mttr) <= 0 or group_disks <= tolerated:
        raise ModelError("invalid group parameters")
    rng = random.Random(seed)
    total = 0.0
    for _ in range(samples):
        total += _draw_loss_time(rng, disk_mttf, group_disks, mttr, tolerated)
    return total / samples
