"""The paper's analytical model and figure generators."""

from . import operations, page_logging, record_logging, redo_only
from .figures import (DEFAULT_C_SWEEP, DEFAULT_S_SWEEP, FigureSeries,
                      all_figures, figure9, figure10, figure11, figure12,
                      figure13)
from .params import ModelParams, high_retrieval, high_update
from .queueing import (max_txn_rate, response_time_ms, saturation_gain,
                       throughput_latency_curve, txn_response_ms, utilization)
from .reliability import paper_motivation_table
from .sensitivity import SweepResult, rda_gain_sweep, sweep
from .probabilities import (average_log_entry_length,
                            concurrent_modifier_fraction,
                            geometric_chain_term, logging_probability,
                            optimal_checkpoint_interval,
                            replaced_page_modified, shared_update_pages,
                            stolen_before_eot)
from .throughput import (CostBreakdown, interval_throughput,
                         mean_transaction_cost)

from .operations import (MODEL_EXPECTATIONS, OPERATION_COSTS, OperationCost,
                         predicted_band, transfer_bands)

__all__ = [
    "operations",
    "page_logging",
    "record_logging",
    "redo_only",
    "MODEL_EXPECTATIONS",
    "OPERATION_COSTS",
    "OperationCost",
    "predicted_band",
    "transfer_bands",
    "DEFAULT_C_SWEEP",
    "DEFAULT_S_SWEEP",
    "FigureSeries",
    "all_figures",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "ModelParams",
    "high_retrieval",
    "high_update",
    "average_log_entry_length",
    "concurrent_modifier_fraction",
    "geometric_chain_term",
    "logging_probability",
    "optimal_checkpoint_interval",
    "replaced_page_modified",
    "shared_update_pages",
    "stolen_before_eot",
    "CostBreakdown",
    "interval_throughput",
    "mean_transaction_cost",
    "max_txn_rate",
    "response_time_ms",
    "saturation_gain",
    "throughput_latency_curve",
    "txn_response_ms",
    "utilization",
    "paper_motivation_table",
    "SweepResult",
    "rda_gain_sweep",
    "sweep",
]
