"""The StorageBackend protocol and registry.

Covers registry lookup and error paths, the legacy-default resolution
from DBConfig, structural (runtime) protocol conformance of every
built-in array, the rda-needs-twins guard, and the full "adding a
backend in ~50 lines" story: register a custom array and run a
Database on it with no engine changes.
"""

import pytest

from repro.db import Database, preset
from repro.db.config import DBConfig
from repro.errors import ModelError
from repro.storage import (SingleParityArray, StorageBackend, TwinBackend,
                           TwinParityArray, backend_names, backend_spec,
                           create_backend, make_page, register_backend,
                           resolve_backend_name)
from repro.storage.backend import _REGISTRY
from repro.storage.raid6 import Raid6Array


class TestRegistry:
    def test_builtins_registered(self):
        assert backend_names() == ["parity-striped", "raid6", "single",
                                   "twin", "twin-parity-striped"]

    def test_spec_lookup(self):
        spec = backend_spec("raid6")
        assert spec.name == "raid6"
        assert spec.twin is False
        assert spec.description

    def test_unknown_name(self):
        with pytest.raises(ModelError, match="unknown storage backend"):
            backend_spec("no-such-layout")

    def test_twin_flags_match_capability(self):
        for name in backend_names():
            spec = backend_spec(name)
            array = spec.factory(
                DBConfig(rda=spec.twin, backend=name, group_size=4,
                         num_groups=4), None, None, None)
            assert array.supports_twins is spec.twin, name


class TestResolution:
    def test_explicit_backend_wins(self):
        assert resolve_backend_name(
            DBConfig(rda=True, backend="twin-parity-striped")) == \
            "twin-parity-striped"

    def test_legacy_default_rda(self):
        assert resolve_backend_name(DBConfig(rda=True)) == "twin"

    def test_legacy_default_wal(self):
        assert resolve_backend_name(DBConfig(rda=False)) == "single"

    def test_rda_over_twinless_backend_rejected(self):
        with pytest.raises(ModelError, match="no parity twins"):
            create_backend(DBConfig(rda=True, backend="raid6"))

    def test_create_builds_expected_classes(self):
        cases = {"twin": TwinParityArray, "single": SingleParityArray,
                 "raid6": Raid6Array}
        for name, cls in cases.items():
            array = create_backend(
                DBConfig(rda=(name == "twin"), backend=name,
                         group_size=4, num_groups=4))
            assert type(array) is cls


class TestProtocolConformance:
    """Structural conformance, checked at runtime for every registered
    backend (mypy checks the same statically via the asserts in
    repro/storage/backend.py)."""

    @pytest.mark.parametrize("name", ["parity-striped", "raid6", "single",
                                      "twin", "twin-parity-striped"])
    def test_satisfies_storage_backend(self, name):
        spec = backend_spec(name)
        array = spec.factory(
            DBConfig(rda=spec.twin, backend=name, group_size=4,
                     num_groups=4), None, None, None)
        assert isinstance(array, StorageBackend)
        if spec.twin:
            assert isinstance(array, TwinBackend)


class TestCustomBackend:
    """The docs/architecture.md worked example: a new layout reaches
    the whole engine through the registry alone."""

    def test_register_run_database_and_recover(self):
        calls = []

        def _make_tagged_single(config, stats, tracer, metrics):
            calls.append(config.backend)
            from repro.storage.geometry import Geometry
            geometry = Geometry(config.group_size, config.num_groups,
                                twin=False)
            return SingleParityArray(geometry, stats=stats, tracer=tracer,
                                     metrics=metrics)

        register_backend("test-layout", _make_tagged_single, twin=False,
                         description="registry test double")
        try:
            config = preset("page-force-log", group_size=4, num_groups=6,
                            buffer_capacity=8, backend="test-layout")
            db = Database(config)
            assert calls == ["test-layout"]
            txn = db.begin()
            db.write_page(txn, 0, make_page(b"via custom backend"))
            db.commit(txn)
            db.crash()
            db.recover()
            assert db.disk_page(0) == make_page(b"via custom backend")
            assert db.verify_parity() == []
        finally:
            del _REGISTRY["test-layout"]

    def test_rda_preset_rejects_custom_twinless_backend(self):
        register_backend("test-twinless", lambda c, s, t, m: None,
                         twin=False, description="")
        try:
            with pytest.raises(ModelError, match="no parity twins"):
                Database(preset("page-force-rda", backend="test-twinless"))
        finally:
            del _REGISTRY["test-twinless"]
