"""Figure 11: record logging, FORCE/TOC — throughput vs C.

Record logging shrinks the log volume, so RDA's before-image savings
matter much less: the benefit stays in single digits.  The figure's
high-update axis (≈ 150 600 .. 215 900) anchors the magnitudes.
"""

import pytest

from repro.model import figure11

from .conftest import write_table


def test_figure11_regeneration(benchmark, results_dir):
    figure = benchmark(figure11)
    write_table(results_dir, "figure11", figure.format_table())

    base = figure.curves["high-update ¬RDA"]
    rda = figure.curves["high-update RDA"]
    assert all(r > b for r, b in zip(rda, base))
    at_09 = figure.x_values.index(0.9)
    gain = rda[at_09] / base[at_09] - 1.0
    assert 0.0 < gain < 0.10          # small benefit under record logging

    assert base[0] == pytest.approx(150600, rel=0.10)
    assert rda[at_09] == pytest.approx(215900, rel=0.10)

    benchmark.extra_info["high_update_gain_at_C0.9"] = round(gain, 4)
    benchmark.extra_info["axis_low_paper"] = 150600
    benchmark.extra_info["axis_high_paper"] = 215900


def test_figure11_record_beats_page_logging(benchmark):
    """Sanity: record logging's smaller log volume lifts throughput far
    above page logging for the same workload."""
    from repro.model.page_logging import force_toc as page_force
    from repro.model.record_logging import force_toc as record_force
    from repro.model.params import high_update

    def evaluate():
        p = high_update(C=0.5)
        return (page_force(p, rda=False).throughput,
                record_force(p, rda=False).throughput)

    page, record = benchmark(evaluate)
    assert record > 2 * page
