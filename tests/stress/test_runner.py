"""Smoke tests for the stress runner, workload phases, and report math."""

import pytest

from repro.errors import ModelError
from repro.stress import (StressOptions, StressPhase, StressReport,
                          StressRunner, StressWorkload, default_matrix,
                          default_phases, format_stress_report,
                          matrix_to_dict, run_stress_matrix)
from repro.sim.workload import WorkloadSpec


class TestOptions:
    def test_needs_a_stopping_condition(self):
        with pytest.raises(ModelError):
            StressOptions(ops=None, duration_s=None)

    def test_rejects_bad_shards_and_batch(self):
        with pytest.raises(ModelError):
            StressOptions(shards=0)
        with pytest.raises(ModelError):
            StressOptions(batch_size=0)


class TestStressWorkload:
    def test_phases_rotate_and_quiesce(self):
        from repro.db import Database, preset
        db = Database(preset("page-noforce-rda", group_size=5, num_groups=12,
                             buffer_capacity=20))
        workload = StressWorkload(db, seed=1)
        names = [workload.run_batch(4)[0] for _ in range(7)]
        # default phases run 2 batches each before rotating
        assert names[:6] == ["hot-writes", "hot-writes", "scan-reads",
                             "scan-reads", "mixed", "mixed"]
        assert names[6] == "hot-writes"   # wraps around
        assert not db.txns.active_transactions()   # quiesced between batches
        assert workload.committed + workload.aborted >= 7 * 4

    def test_default_phases_cover_the_three_regimes(self):
        phases = default_phases()
        assert [p.name for p in phases] == ["hot-writes", "scan-reads",
                                            "mixed"]
        hot = phases[0].spec
        scan = phases[1].spec
        assert hot.skew > 0 and hot.update_txn_fraction > 0.5
        assert scan.pages_per_txn > hot.pages_per_txn
        assert scan.update_txn_fraction < 0.5

    def test_custom_phase_validation(self):
        with pytest.raises(ModelError):
            StressPhase(name="x", spec=WorkloadSpec(), batches=0)


@pytest.mark.parametrize("preset_name", [
    "page-force-rda", "page-noforce-rda",
    "record-force-rda", "record-noforce-rda",
])
class TestRunnerPerClass:
    def test_short_chaos_run_is_clean(self, preset_name):
        options = StressOptions(preset=preset_name, seed=3, ops=24,
                                batch_size=8, baseline=False)
        report = StressRunner(options).run()
        assert report.clean, report.violations[:3]
        assert report.faults_injected >= 2
        assert report.faults_survived == report.faults_injected
        assert report.ticks == 3


class TestRunnerSharded:
    def test_sharded_cell_exercises_shard_kill(self):
        options = StressOptions(preset="page-force-rda", shards=2, seed=7,
                                ops=64, batch_size=8, baseline=False)
        report = StressRunner(options).run()
        assert report.clean, report.violations[:3]
        assert "shard_kill" in report.injected_by_kind
        assert report.injected_by_kind == report.survived_by_kind

    def test_baseline_gives_chaos_ratio(self):
        options = StressOptions(preset="page-noforce-rda", seed=2, ops=24,
                                batch_size=8)
        report = StressRunner(options).run()
        assert report.baseline_committed > 0
        assert report.chaos_ratio is not None and report.chaos_ratio > 0


class TestReportMath:
    def test_faults_survived_per_hour(self):
        report = StressReport(preset="p", shards=1, seed=0,
                              nemesis_profile="default",
                              faults_injected=4, faults_survived=4,
                              duration_s=2.0)
        assert report.faults_survived_per_hour == pytest.approx(7200.0)

    def test_clean_respects_drift_alarms(self):
        report = StressReport(preset="p", shards=1, seed=0,
                              nemesis_profile="default")
        assert report.clean
        report.drift = {"alarms": [{"variant": "x"}]}
        assert not report.clean

    def test_matrix_aggregation_and_table(self):
        reports = run_stress_matrix(default_matrix(seed=3, ops=16,
                                                   baseline=False))
        doc = matrix_to_dict(reports)
        assert len(doc["cells"]) == 9
        assert {c["shards"] for c in doc["cells"]} == {1, 2}
        table = format_stress_report(reports)
        assert "fault kinds" in table
        for report in reports:
            assert f"{report.preset} K={report.shards}" in table


class TestCli:
    def test_stress_single_cell(self, capsys, tmp_path):
        import json
        from repro.cli import main
        out_file = tmp_path / "stress.json"
        code = main(["stress", "--preset", "page-noforce-rda", "--ops", "24",
                     "--seed", "3", "--no-baseline",
                     "--report-out", str(out_file)])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["clean"] is True
        assert doc["totals"]["faults_injected"] >= 2
        assert "survived_per_hour" in doc["cells"][0]["faults"]
        assert "faults        :" in capsys.readouterr().out

    def test_stress_rejects_unknown_profile_and_preset(self, capsys):
        from repro.cli import main
        assert main(["stress", "--nemesis-profile", "meteor"]) == 2
        assert main(["stress", "--preset", "magic"]) == 2
