"""Stress-run verdicts: per-cell :class:`StressReport` and rendering.

The report is the contract between the chaos loop and everything that
consumes it (CI gates, the soak tests, a human reading the table).  Its
headline figures follow the reliability-engineering framing rather than
the benchmark framing:

* **faults survived / hour** — how much verified chaos the configuration
  absorbs per unit time (a fault *survives* only if injected, repaired,
  and judged clean by every oracle);
* **throughput under chaos vs. fault-free baseline** — committed
  transactions per second with the nemesis on, as a fraction of the
  same workload+judges with the nemesis off (so the ratio isolates the
  faults, not the judging overhead);
* **MTTR samples** — per-cycle recovery times from the PR-7
  :class:`~repro.obs.recovery_profile.RecoveryProfile`, fed by the
  runner's injectable clock so deterministic runs stay byte-identical.

Every timestamp in a report comes from the runner's clock parameter —
``json.dumps(report.to_dict(), sort_keys=True)`` is byte-identical
across runs of the same seed when a deterministic clock is supplied
(see ``tests/stress/test_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StressReport:
    """Verdict for one stress cell (one preset × shard count)."""

    preset: str
    shards: int
    seed: int
    nemesis_profile: str
    workers: bool = False
    worker_deaths: int = 0
    ticks: int = 0
    committed: int = 0
    aborted: int = 0
    deadlocks: int = 0
    faults_injected: int = 0
    faults_survived: int = 0
    injected_by_kind: Dict[str, int] = field(default_factory=dict)
    survived_by_kind: Dict[str, int] = field(default_factory=dict)
    violations: List[dict] = field(default_factory=list)
    phase_batches: Dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    baseline_duration_s: float = 0.0
    baseline_committed: int = 0
    mttr: Optional[dict] = None
    drift: Optional[dict] = None
    schedule: List[dict] = field(default_factory=list)
    faults: List[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Zero violations and no drift alarms (when drift was checked)."""
        if self.violations:
            return False
        if self.drift is not None and self.drift.get("alarms"):
            return False
        return True

    @property
    def faults_survived_per_hour(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.faults_survived * 3600.0 / self.duration_s

    @property
    def throughput(self) -> float:
        """Committed transactions/second under chaos."""
        if self.duration_s <= 0:
            return 0.0
        return self.committed / self.duration_s

    @property
    def baseline_throughput(self) -> float:
        if self.baseline_duration_s <= 0:
            return 0.0
        return self.baseline_committed / self.baseline_duration_s

    @property
    def chaos_ratio(self) -> Optional[float]:
        """Throughput under chaos / fault-free throughput (None when no
        baseline was run)."""
        baseline = self.baseline_throughput
        if baseline <= 0:
            return None
        return self.throughput / baseline

    def to_dict(self) -> dict:
        ratio = self.chaos_ratio
        return {
            "preset": self.preset,
            "shards": self.shards,
            "seed": self.seed,
            "nemesis_profile": self.nemesis_profile,
            "workers": self.workers,
            "worker_deaths": self.worker_deaths,
            "ticks": self.ticks,
            "committed": self.committed,
            "aborted": self.aborted,
            "deadlocks": self.deadlocks,
            "duration_s": round(self.duration_s, 6),
            "throughput_txn_s": round(self.throughput, 3),
            "baseline": {
                "committed": self.baseline_committed,
                "duration_s": round(self.baseline_duration_s, 6),
                "throughput_txn_s": round(self.baseline_throughput, 3),
            },
            "chaos_ratio": None if ratio is None else round(ratio, 4),
            "faults": {
                "injected": self.faults_injected,
                "survived": self.faults_survived,
                "injected_by_kind": dict(sorted(
                    self.injected_by_kind.items())),
                "survived_by_kind": dict(sorted(
                    self.survived_by_kind.items())),
                "survived_per_hour": round(
                    self.faults_survived_per_hour, 2),
                "log": self.faults,
            },
            "violations": self.violations,
            "clean": self.clean,
            "phase_batches": dict(sorted(self.phase_batches.items())),
            "mttr": self.mttr,
            "drift": self.drift,
            "schedule": self.schedule,
        }


def matrix_to_dict(reports: List[StressReport]) -> dict:
    """Aggregate verdict for a multi-cell run (the CLI's JSON shape)."""
    injected: Dict[str, int] = {}
    survived: Dict[str, int] = {}
    for report in reports:
        for kind, count in report.injected_by_kind.items():
            injected[kind] = injected.get(kind, 0) + count
        for kind, count in report.survived_by_kind.items():
            survived[kind] = survived.get(kind, 0) + count
    total_s = sum(report.duration_s for report in reports)
    total_survived = sum(report.faults_survived for report in reports)
    return {
        "clean": all(report.clean for report in reports),
        "cells": [report.to_dict() for report in reports],
        "totals": {
            "faults_injected": sum(r.faults_injected for r in reports),
            "faults_survived": total_survived,
            "distinct_fault_kinds": len(injected),
            "injected_by_kind": dict(sorted(injected.items())),
            "survived_by_kind": dict(sorted(survived.items())),
            "faults_survived_per_hour": round(
                total_survived * 3600.0 / total_s, 2) if total_s > 0 else 0.0,
            "committed": sum(r.committed for r in reports),
            "violations": sum(len(r.violations) for r in reports),
        },
    }


def format_stress_report(reports: List[StressReport]) -> str:
    """Human-readable table for one or more stress cells."""
    lines: List[str] = []
    header = (f"{'cell':<28} {'ticks':>5} {'txns':>6} {'faults':>9} "
              f"{'f/hr':>8} {'chaos%':>7} {'viol':>5}  verdict")
    lines.append(header)
    lines.append("-" * len(header))
    for report in reports:
        cell = f"{report.preset} K={report.shards}"
        faults = f"{report.faults_survived}/{report.faults_injected}"
        ratio = report.chaos_ratio
        chaos = f"{ratio * 100:6.1f}%" if ratio is not None else "    n/a"
        verdict = "ok" if report.clean else "VIOLATIONS"
        lines.append(f"{cell:<28} {report.ticks:>5} {report.committed:>6} "
                     f"{faults:>9} {report.faults_survived_per_hour:>8.1f} "
                     f"{chaos:>7} {len(report.violations):>5}  {verdict}")
    injected: Dict[str, int] = {}
    survived: Dict[str, int] = {}
    for report in reports:
        for kind, count in report.injected_by_kind.items():
            injected[kind] = injected.get(kind, 0) + count
        for kind, count in report.survived_by_kind.items():
            survived[kind] = survived.get(kind, 0) + count
    lines.append("")
    lines.append("fault kinds (survived/injected): " + "  ".join(
        f"{kind}={survived.get(kind, 0)}/{count}"
        for kind, count in sorted(injected.items())))
    dirty = [report for report in reports if not report.clean]
    if dirty:
        lines.append("")
        for report in dirty:
            for violation in report.violations[:10]:
                lines.append(
                    f"  VIOLATION [{report.preset} K={report.shards}] "
                    f"tick={violation['tick']} {violation['kind']}: "
                    f"{violation['detail']} "
                    f"(active faults: "
                    f"{', '.join(violation['active_faults']) or 'none'})")
            extra = len(report.violations) - 10
            if extra > 0:
                lines.append(f"  ... and {extra} more in "
                             f"{report.preset} K={report.shards}")
    return "\n".join(lines)
