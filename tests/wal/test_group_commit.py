"""Group commit: the coordinator, deferred forces, and the
partial-page rewrite accounting that makes batching measurable.

The crash-safety contract under test: a force deferred inside a
commit window is made durable by the coordinator's flush — and a flush
interrupted mid-way (a simulated power cut raising from a device hook)
must leave the unflushed logs pending so the crash drain finishes the
job; otherwise acknowledged commits would evaporate.
"""

import pytest

from repro.storage.iostats import IOStats
from repro.wal import GroupCommitCoordinator, GroupCommitLog, LogManager
from repro.wal.records import BOTRecord, CommitRecord


def make_log(coordinator=None, stats=None, name="gc"):
    return GroupCommitLog(name=name, page_size=128, transfers_per_log_page=1,
                          stats=stats if stats is not None else IOStats(),
                          coordinator=coordinator)


class TestCoordinator:
    def test_flush_horizon_validated(self):
        with pytest.raises(ValueError):
            GroupCommitCoordinator(flush_horizon=0)

    def test_force_outside_window_is_synchronous(self):
        coordinator = GroupCommitCoordinator(flush_horizon=4)
        log = make_log(coordinator)
        log.append(BOTRecord(txn_id=1))
        log.force()
        assert log.forced_lsn == log.last_lsn
        assert coordinator.pending_logs == 0
        assert coordinator.deferred_forces == 0

    def test_force_inside_window_is_deferred(self):
        coordinator = GroupCommitCoordinator(flush_horizon=4)
        log = make_log(coordinator)
        with coordinator.deferred():
            log.append(CommitRecord(txn_id=1))
            log.force()
            assert coordinator.deferring
        assert log.forced_lsn != log.last_lsn
        assert coordinator.pending_logs == 1
        assert coordinator.deferred_forces == 1

    def test_note_commit_flushes_at_horizon(self):
        coordinator = GroupCommitCoordinator(flush_horizon=3)
        log = make_log(coordinator)
        for commit in range(1, 4):
            with coordinator.deferred():
                log.append(CommitRecord(txn_id=commit))
                log.force()
            coordinator.note_commit()
        assert coordinator.flushes == 1
        assert coordinator.pending_logs == 0
        assert log.forced_lsn == log.last_lsn

    def test_horizon_one_flushes_every_commit(self):
        coordinator = GroupCommitCoordinator(flush_horizon=1)
        log = make_log(coordinator)
        for commit in range(1, 4):
            with coordinator.deferred():
                log.append(CommitRecord(txn_id=commit))
                log.force()
            coordinator.note_commit()
            assert log.forced_lsn == log.last_lsn
        assert coordinator.flushes == 3

    def test_flush_is_idempotent(self):
        coordinator = GroupCommitCoordinator(flush_horizon=4)
        log = make_log(coordinator)
        with coordinator.deferred():
            log.append(CommitRecord(txn_id=1))
            log.force()
        assert coordinator.flush() == 1
        assert coordinator.flush() == 0
        assert coordinator.flushes == 1

    def test_durable_lsn_covers_pending_tail(self):
        coordinator = GroupCommitCoordinator(flush_horizon=4)
        log = make_log(coordinator)
        log.append(BOTRecord(txn_id=1))
        log.force()
        with coordinator.deferred():
            log.append(CommitRecord(txn_id=1))
            log.force()
        # forced_lsn lags, but the drain contract covers the tail
        assert log.forced_lsn < log.last_lsn
        assert log.durable_lsn == log.last_lsn
        coordinator.flush()
        assert log.durable_lsn == log.forced_lsn == log.last_lsn

    def test_plain_log_durable_lsn_is_forced_lsn(self):
        log = LogManager(name="plain", page_size=128,
                         transfers_per_log_page=1, stats=IOStats())
        log.append(BOTRecord(txn_id=1))
        assert log.durable_lsn == log.forced_lsn


class TestInterruptedFlush:
    def test_interrupted_flush_keeps_unflushed_logs_pending(self):
        """A power cut mid-flush must not lose the rest of the batch."""
        coordinator = GroupCommitCoordinator(flush_horizon=4)
        first, second = make_log(coordinator, name="a"), \
            make_log(coordinator, name="b")
        with coordinator.deferred():
            for log in (first, second):
                log.append(CommitRecord(txn_id=1))
                log.force()
        assert coordinator.pending_logs == 2

        class PowerCut(Exception):
            pass

        def cut(device_id, page_index):
            raise PowerCut

        for device in first._devices:
            device.on_page_write = cut
        with pytest.raises(PowerCut):
            coordinator.flush()
        # the interrupted log is still pending; nothing was dropped
        assert coordinator.pending_logs == 2
        for device in first._devices:
            device.on_page_write = None
        # the crash drain completes the batch
        assert coordinator.flush() == 2
        assert first.forced_lsn == first.last_lsn
        assert second.forced_lsn == second.last_lsn


class TestPartialPageAccounting:
    def test_reforce_charges_each_partial_rewrite(self):
        """Per-commit forcing rewrites the partial page every time."""
        stats = IOStats()
        log = make_log(None, stats=stats)
        for commit in range(1, 4):
            log.append(CommitRecord(txn_id=commit))
            before = stats.log_transfers
            log.force()
            # both mirror copies rewrite their partial page
            assert stats.log_transfers == before + 2

    def test_reforce_without_new_bytes_is_free(self):
        stats = IOStats()
        log = make_log(None, stats=stats)
        log.append(CommitRecord(txn_id=1))
        log.force()
        before = stats.log_transfers
        log.force()
        assert stats.log_transfers == before

    def test_batched_force_charges_once_for_many_commits(self):
        coordinator = GroupCommitCoordinator(flush_horizon=8)
        stats = IOStats()
        log = make_log(coordinator, stats=stats)
        for commit in range(1, 9):
            with coordinator.deferred():
                log.append(CommitRecord(txn_id=commit))
                log.force()
            coordinator.note_commit()
        # 8 commits' records fit in one 128-byte-page-sized tail here?
        # they may cross page boundaries; the claim is only that the
        # batched total is below per-commit forcing's 2-per-commit
        assert stats.log_transfers < 2 * 8

    def test_forced_tail_survives_crash_truncate(self):
        stats = IOStats()
        log = make_log(None, stats=stats)
        log.append(BOTRecord(txn_id=1))
        log.append(CommitRecord(txn_id=1))
        log.force()
        size = log.size_bytes
        log.crash()
        log.after_crash()
        assert log.size_bytes == size
        assert [type(r).__name__ for r in log.records()] == \
            ["BOTRecord", "CommitRecord"]

    def test_unforced_tail_lost_at_crash(self):
        coordinator = GroupCommitCoordinator(flush_horizon=4)
        log = make_log(coordinator)
        with coordinator.deferred():
            log.append(CommitRecord(txn_id=1))
            log.force()
        # crash WITHOUT draining the coordinator (contract violation
        # path): the deferred tail is genuinely not durable
        log.crash()
        log.after_crash()
        assert list(log.records()) == []
