"""Storage substrate: simulated disks and redundant disk arrays.

Public surface:

* :data:`~repro.storage.page.PAGE_SIZE`, page/XOR helpers and parity
  headers (:mod:`repro.storage.page`);
* :class:`~repro.storage.disk.SimulatedDisk` with fail-stop injection;
* geometries for RAID-5 rotated parity and Gray parity striping, each in
  single- and twin-parity form (:mod:`repro.storage.geometry`);
* :class:`~repro.storage.array.SingleParityArray` and
  :class:`~repro.storage.twin_array.TwinParityArray` implementing the
  small-write protocol, degraded reads and rebuild;
* the :class:`~repro.storage.backend.StorageBackend` protocol and the
  backend registry (:func:`~repro.storage.backend.create_backend`,
  :func:`~repro.storage.backend.register_backend`) the database engine
  constructs its array through;
* :class:`~repro.storage.iostats.IOStats` page-transfer accounting;
* vectorized page kernels with runtime tier selection
  (:mod:`repro.storage.kernels`: :func:`~repro.storage.kernels.active_tier`,
  :func:`~repro.storage.kernels.available_tiers`,
  :func:`~repro.storage.kernels.set_kernel`,
  :func:`~repro.storage.kernels.use_kernel`).
"""

from .array import DiskArray, SingleParityArray
from .backend import (BackendSpec, StorageBackend, TwinBackend, backend_names,
                      backend_spec, create_backend, register_backend,
                      resolve_backend_name)
from .disk import SimulatedDisk
from .geometry import (Geometry, PhysAddr, Placement, parity_striping_geometry,
                       raid5_geometry)
from .kernels import active_tier, available_tiers, set_kernel, use_kernel
from .iostats import IOStats, TransferCounts
from .page import (HEADER_SIZE, NO_PAGE, NO_TXN, PAGE_SIZE, ZERO_PAGE,
                   ParityHeader, TwinState, compute_parity, make_page,
                   pack_header, reconstruct_before_image, unpack_header,
                   xor_pages)
from .parity_striping import make_parity_striped, make_twin_parity_striped
from .raid5 import make_raid5, make_twin_raid5
from .raid6 import Raid6Array, make_raid6
from .timing import (ArrayTimer, DiskTimer, DiskTimingSpec,
                     time_mixed_workload, time_read, time_sequential_scan,
                     time_small_write)
from .twin_array import (DirtyGroupInfo, RebuildReport, TwinParityArray,
                         TwinUpdate, select_current_twin)

__all__ = [
    "active_tier",
    "available_tiers",
    "set_kernel",
    "use_kernel",
    "DiskArray",
    "SingleParityArray",
    "BackendSpec",
    "StorageBackend",
    "TwinBackend",
    "backend_names",
    "backend_spec",
    "create_backend",
    "register_backend",
    "resolve_backend_name",
    "SimulatedDisk",
    "Geometry",
    "PhysAddr",
    "Placement",
    "parity_striping_geometry",
    "raid5_geometry",
    "IOStats",
    "TransferCounts",
    "HEADER_SIZE",
    "NO_PAGE",
    "NO_TXN",
    "PAGE_SIZE",
    "ZERO_PAGE",
    "ParityHeader",
    "TwinState",
    "compute_parity",
    "make_page",
    "pack_header",
    "reconstruct_before_image",
    "unpack_header",
    "xor_pages",
    "make_parity_striped",
    "make_twin_parity_striped",
    "make_raid5",
    "make_twin_raid5",
    "Raid6Array",
    "make_raid6",
    "ArrayTimer",
    "DiskTimer",
    "DiskTimingSpec",
    "time_mixed_workload",
    "time_read",
    "time_sequential_scan",
    "time_small_write",
    "DirtyGroupInfo",
    "RebuildReport",
    "TwinParityArray",
    "TwinUpdate",
    "select_current_twin",
]
