"""Tests for the disk service-time model."""

import pytest

from repro.storage.geometry import parity_striping_geometry, raid5_geometry
from repro.storage.timing import (ArrayTimer, DiskTimer, DiskTimingSpec,
                                  time_mixed_workload, time_read,
                                  time_sequential_scan, time_small_write)


@pytest.fixture
def spec():
    return DiskTimingSpec()


CYLS = 125      # cylinders of a 1000-slot disk at 8 pages/cylinder


class TestSpec:
    def test_zero_distance_no_seek(self, spec):
        assert spec.seek_time(0, CYLS) == 0.0

    def test_full_stroke(self, spec):
        assert spec.seek_time(CYLS - 1, CYLS) == pytest.approx(
            spec.max_seek_ms)

    def test_seek_monotone(self, spec):
        times = [spec.seek_time(d, CYLS) for d in (1, 10, 60, 124)]
        assert times == sorted(times)

    def test_service_includes_rotation_and_transfer(self, spec):
        assert spec.service_time(0, CYLS) == pytest.approx(
            spec.rotation_ms / 2 + spec.transfer_ms_per_page)

    def test_cylinders_for(self, spec):
        assert spec.cylinders_for(1000) == 125
        assert spec.cylinders_for(1) == 1


class TestDiskTimer:
    def test_repeated_same_slot_no_seek(self, spec):
        timer = DiskTimer(spec, capacity=100)
        timer.access(50)
        first_busy = timer.busy_ms
        timer.access(50)
        assert timer.seeks == 1      # only the initial move
        assert timer.busy_ms - first_busy == pytest.approx(
            spec.service_time(0, spec.cylinders_for(100)))

    def test_adjacent_slots_share_cylinder(self, spec):
        timer = DiskTimer(spec, capacity=100)
        timer.access(8)
        timer.access(9)              # same cylinder at 8 pages/cylinder
        assert timer.seeks == 1

    def test_arm_tracks_position(self, spec):
        timer = DiskTimer(spec, capacity=100)
        timer.access(0)
        timer.access(99)
        assert timer.arm_cylinder == 99 // spec.pages_per_cylinder

    def test_mean_service(self, spec):
        timer = DiskTimer(spec, capacity=100)
        assert timer.mean_service_ms == 0.0
        timer.access(0)
        timer.access(0)
        assert timer.mean_service_ms == pytest.approx(timer.busy_ms / 2)

    def test_single_slot_disk(self, spec):
        timer = DiskTimer(spec, capacity=1)
        timer.access(0)
        assert timer.arm_cylinder == 0


class TestArrayTimer:
    def test_parallel_phase_takes_slowest(self, spec):
        timer = ArrayTimer(spec, capacity_per_disk=100, num_disks=3)
        # disk 0 at cylinder 0 stays; disk 1 must cross the disk
        cylinders = spec.cylinders_for(100)
        latency = timer.operation([(0, 0), (1, 99)])
        assert latency == pytest.approx(
            spec.service_time(99 // spec.pages_per_cylinder, cylinders))

    def test_phases_are_sequential(self, spec):
        timer = ArrayTimer(spec, capacity_per_disk=100, num_disks=2)
        latency = timer.operation([(0, 0)], [(0, 0)])
        assert latency == pytest.approx(
            2 * spec.service_time(0, spec.cylinders_for(100)))

    def test_utilizations_bounded(self, spec):
        timer = ArrayTimer(spec, capacity_per_disk=100, num_disks=2)
        timer.operation([(0, 0)])
        timer.operation([(1, 50)])
        for u in timer.utilizations():
            assert 0.0 <= u <= 1.0

    def test_mean_latency(self, spec):
        timer = ArrayTimer(spec, capacity_per_disk=10, num_disks=2)
        timer.operation([(0, 0)])
        timer.operation([(0, 0)])
        assert timer.mean_latency_ms() == pytest.approx(timer.elapsed_ms / 2)


class TestOrganizationComparison:
    """Gray's argument, measured: parity striping preserves sequential
    locality; data striping trades it for parallel large transfers."""

    def _timer_for(self, geometry, spec):
        return ArrayTimer(spec, geometry.capacity_per_disk,
                          geometry.num_disks)

    def test_mixed_workload_favors_parity_striping(self, spec):
        """A scan interleaved with random traffic: parity striping keeps
        the scan on one arm, so it pays far fewer long seeks."""
        import random
        rng = random.Random(5)
        raid = raid5_geometry(4, 200)
        striped = parity_striping_geometry(4, 200)
        scan = list(range(0, 60))
        randoms = [rng.randrange(raid.num_data_pages) for _ in range(60)]
        raid_timer = self._timer_for(raid, spec)
        striped_timer = self._timer_for(striped, spec)
        raid_total = time_mixed_workload(raid_timer, raid, scan, randoms)
        striped_total = time_mixed_workload(striped_timer, striped, scan,
                                            randoms)
        assert striped_total < raid_total
        assert striped_timer.total_seeks() < raid_timer.total_seeks()

    def test_dedicated_scan_equal_cost(self, spec):
        """Without contention the organizations tie: each disk's own
        accesses are sequential either way."""
        raid = raid5_geometry(4, 200)
        striped = parity_striping_geometry(4, 200)
        raid_total = time_sequential_scan(
            self._timer_for(raid, spec), raid, 0, 40)
        striped_total = time_sequential_scan(
            self._timer_for(striped, spec), striped, 0, 40)
        assert striped_total == pytest.approx(raid_total, rel=0.25)

    def test_small_write_two_rounds(self, spec):
        geometry = raid5_geometry(4, 50)
        timer = self._timer_for(geometry, spec)
        latency = time_small_write(timer, geometry, 0)
        # two phases, each at least one rotation/2 + transfer
        assert latency >= 2 * (spec.rotation_ms / 2
                               + spec.transfer_ms_per_page)

    def test_twin_write_not_slower_than_double(self, spec):
        """Updating both twins happens in the same two rounds, so the
        latency overhead of a dirty-group write is bounded by the extra
        arm, not doubled."""
        geometry = raid5_geometry(4, 50, twin=True)
        single = time_small_write(self._timer_for(geometry, spec),
                                  geometry, 0, twins=1)
        both = time_small_write(self._timer_for(geometry, spec),
                                geometry, 0, twins=2)
        assert both < 2 * single

    def test_buffered_old_skips_read_arm(self, spec):
        geometry = raid5_geometry(4, 50)
        cold = time_small_write(self._timer_for(geometry, spec), geometry, 0,
                                old_in_buffer=False)
        warm = time_small_write(self._timer_for(geometry, spec), geometry, 0,
                                old_in_buffer=True)
        assert warm <= cold
