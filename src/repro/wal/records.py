"""Log record types.

The paper's recovery algorithms (Section 4.3, 5) use:

* **BOT** — written when a transaction first writes back a modified page
  (or at its first update), *before* any of its pages reach disk, so
  crash recovery knows which transactions may have touched the database;
* **COMMIT / ABORT** — the EOT records;
* **page before-images** (UNDO) and **after-images** (REDO) under page
  logging;
* **record before/after entries** under record logging (Section 5.3),
  where only the modified bytes of a record are logged;
* **checkpoint** records for the ACC discipline (active transactions and
  the dirty-page list at the action-consistent point).

Each record serializes to bytes with a fixed header so the duplexed log
can be byte-compared, sized, and re-parsed after a crash.  Records carry
``prev_lsn``, the backward per-transaction chain the paper inherits from
TWIST: rollback follows the chain instead of scanning the whole log.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from enum import Enum

from ..errors import LogCorruptionError, TornRecordError

NULL_LSN = 0
"""LSN meaning "no record" (chains terminate here)."""

# type, lsn, txn_id, prev_lsn, payload_len, crc32(header prefix + payload)
_HEADER = struct.Struct("<IqqqII")
# the CRC-covered header fields (everything before the crc32 slot);
# "<" packing is unpadded, so _PREFIX bytes + "<I" crc == _HEADER bytes
_PREFIX = struct.Struct("<IqqqI")
_CRC = struct.Struct("<I")


def _record_crc(prefix: bytes, payload: bytes) -> int:
    """CRC32 over the header prefix *and* the payload.

    Covering only the payload would let a torn write that lands in a
    header field (txn_id, lsn, prev_lsn) parse cleanly with silently
    altered attribution — and win duplex healing's longest-prefix tie
    against the intact mirror copy.  The stress nemesis found exactly
    that hole; every header bit is covered now.
    """
    return zlib.crc32(payload, zlib.crc32(prefix))


class RecordType(Enum):
    """Discriminator for serialized log records."""

    BOT = 1
    COMMIT = 2
    ABORT = 3
    PAGE_BEFORE = 4
    PAGE_AFTER = 5
    RECORD_BEFORE = 6
    RECORD_AFTER = 7
    CHECKPOINT = 8
    PAGE_REDO = 9
    RECORD_REDO = 10


@dataclass
class LogRecord:
    """Base log record.

    Attributes:
        txn_id: owning transaction (0 for checkpoint records).
        lsn: log sequence number, assigned by the log manager on append.
        prev_lsn: previous record of the same transaction (the log chain).
    """

    txn_id: int
    lsn: int = NULL_LSN
    prev_lsn: int = NULL_LSN

    record_type = None  # set by subclasses
    page_chained = False  # True for per-page redo-chain record types

    def payload_bytes(self) -> bytes:
        """Type-specific payload; overridden by subclasses."""
        return b""

    def serialize(self) -> bytes:
        """Full wire form: header (with header+payload CRC32) + payload."""
        payload = self.payload_bytes()
        prefix = _PREFIX.pack(self.record_type.value, self.lsn, self.txn_id,
                              self.prev_lsn, len(payload))
        return prefix + _CRC.pack(_record_crc(prefix, payload)) + payload

    @property
    def serialized_size(self) -> int:
        """Bytes this record occupies in the log."""
        return _HEADER.size + len(self.payload_bytes())


@dataclass
class BOTRecord(LogRecord):
    """Begin-of-transaction marker (paper Section 4.3)."""

    record_type = RecordType.BOT


@dataclass
class CommitRecord(LogRecord):
    """EOT: the transaction committed."""

    record_type = RecordType.COMMIT


@dataclass
class AbortRecord(LogRecord):
    """EOT: the transaction rolled back (undo already applied)."""

    record_type = RecordType.ABORT


def _pack_page(page_id: int, payload: bytes) -> bytes:
    return struct.pack("<q", page_id) + payload


def _unpack_page(blob: bytes) -> tuple:
    (page_id,) = struct.unpack_from("<q", blob)
    return page_id, blob[8:]


@dataclass
class PageBeforeImage(LogRecord):
    """UNDO information: the page's contents before the update."""

    record_type = RecordType.PAGE_BEFORE
    page_id: int = 0
    image: bytes = b""

    def payload_bytes(self) -> bytes:
        return _pack_page(self.page_id, self.image)


@dataclass
class PageAfterImage(LogRecord):
    """REDO information: the page's contents after the update."""

    record_type = RecordType.PAGE_AFTER
    page_id: int = 0
    image: bytes = b""

    def payload_bytes(self) -> bytes:
        return _pack_page(self.page_id, self.image)


def _pack_record(page_id: int, slot: int, payload: bytes) -> bytes:
    return struct.pack("<qi", page_id, slot) + payload


def _unpack_record(blob: bytes) -> tuple:
    page_id, slot = struct.unpack_from("<qi", blob)
    return page_id, slot, blob[12:]


@dataclass
class RecordBeforeEntry(LogRecord):
    """UNDO at record granularity: old bytes of one record."""

    record_type = RecordType.RECORD_BEFORE
    page_id: int = 0
    slot: int = 0
    image: bytes = b""

    def payload_bytes(self) -> bytes:
        return _pack_record(self.page_id, self.slot, self.image)


@dataclass
class RecordAfterEntry(LogRecord):
    """REDO at record granularity: new bytes of one record."""

    record_type = RecordType.RECORD_AFTER
    page_id: int = 0
    slot: int = 0
    image: bytes = b""

    def payload_bytes(self) -> bytes:
        return _pack_record(self.page_id, self.slot, self.image)


@dataclass
class PageRedoEntry(LogRecord):
    """REDO-only class: a chained full-page after-image.

    ``prev_page_lsn`` threads the per-*page* redo chain (distinct from
    ``prev_lsn``'s per-transaction chain): restart replays a page's
    chain forward from its on-disk state, so each record must name the
    page's previous chain link for trim safety and single-page repair.
    """

    record_type = RecordType.PAGE_REDO
    page_chained = True
    page_id: int = 0
    prev_page_lsn: int = NULL_LSN
    image: bytes = b""

    def payload_bytes(self) -> bytes:
        return struct.pack("<qq", self.page_id, self.prev_page_lsn) + self.image


@dataclass
class RecordRedoEntry(LogRecord):
    """REDO-only class at record granularity: chained slot after-image."""

    record_type = RecordType.RECORD_REDO
    page_chained = True
    page_id: int = 0
    slot: int = 0
    prev_page_lsn: int = NULL_LSN
    image: bytes = b""

    def payload_bytes(self) -> bytes:
        return (struct.pack("<qiq", self.page_id, self.slot,
                            self.prev_page_lsn) + self.image)


@dataclass
class CheckpointRecord(LogRecord):
    """ACC checkpoint: the action-consistent snapshot marker.

    Attributes:
        active_txns: ids of transactions active at the checkpoint.
        flushed_pages: dirty pages written out by the checkpoint.
    """

    record_type = RecordType.CHECKPOINT
    active_txns: tuple = field(default_factory=tuple)
    flushed_pages: tuple = field(default_factory=tuple)

    def payload_bytes(self) -> bytes:
        doc = {"active": list(self.active_txns),
               "flushed": list(self.flushed_pages)}
        return json.dumps(doc, separators=(",", ":")).encode("ascii")


def deserialize(blob: bytes, offset: int = 0) -> tuple:
    """Parse one record at ``offset``; returns ``(record, next_offset)``.

    Raises:
        LogCorruptionError: on a truncated or malformed record.
    """
    if offset + _HEADER.size > len(blob):
        raise TornRecordError("truncated log record header")
    type_value, lsn, txn_id, prev_lsn, payload_len, crc = _HEADER.unpack_from(
        blob, offset)
    start = offset + _HEADER.size
    end = start + payload_len
    if end > len(blob):
        raise TornRecordError("truncated log record payload")
    payload = blob[start:end]
    if _record_crc(blob[offset:offset + _PREFIX.size], payload) != crc:
        raise LogCorruptionError("log record CRC mismatch (header or payload)")
    try:
        rtype = RecordType(type_value)
    except ValueError:
        raise LogCorruptionError(f"unknown record type {type_value}") from None

    common = dict(txn_id=txn_id, lsn=lsn, prev_lsn=prev_lsn)
    if rtype is RecordType.BOT:
        record = BOTRecord(**common)
    elif rtype is RecordType.COMMIT:
        record = CommitRecord(**common)
    elif rtype is RecordType.ABORT:
        record = AbortRecord(**common)
    elif rtype is RecordType.PAGE_BEFORE:
        page_id, image = _unpack_page(payload)
        record = PageBeforeImage(page_id=page_id, image=image, **common)
    elif rtype is RecordType.PAGE_AFTER:
        page_id, image = _unpack_page(payload)
        record = PageAfterImage(page_id=page_id, image=image, **common)
    elif rtype is RecordType.RECORD_BEFORE:
        page_id, slot, image = _unpack_record(payload)
        record = RecordBeforeEntry(page_id=page_id, slot=slot, image=image, **common)
    elif rtype is RecordType.RECORD_AFTER:
        page_id, slot, image = _unpack_record(payload)
        record = RecordAfterEntry(page_id=page_id, slot=slot, image=image, **common)
    elif rtype is RecordType.PAGE_REDO:
        page_id, prev_page_lsn = struct.unpack_from("<qq", payload)
        record = PageRedoEntry(page_id=page_id, prev_page_lsn=prev_page_lsn,
                               image=payload[16:], **common)
    elif rtype is RecordType.RECORD_REDO:
        page_id, slot, prev_page_lsn = struct.unpack_from("<qiq", payload)
        record = RecordRedoEntry(page_id=page_id, slot=slot,
                                 prev_page_lsn=prev_page_lsn,
                                 image=payload[20:], **common)
    else:
        doc = json.loads(payload.decode("ascii"))
        record = CheckpointRecord(active_txns=tuple(doc["active"]),
                                  flushed_pages=tuple(doc["flushed"]), **common)
    return record, end
