"""Per-operation transfer costs: the paper's cost table as data.

Section 4 prices every storage primitive in page transfers — a small
write costs ``a ∈ {3, 4}``, a write into a dirty group ``a + 2``, an
RDA commit zero, an undo via the parity twins five to six.  This module
is the single source of truth for those predictions, shared by

* the cost-table renderer (:mod:`repro.obs.inspect`, ``python -m repro
  inspect-trace``), which shows the display string next to measured
  means, and
* the online drift detector (:mod:`repro.obs.drift`), which needs the
  *numeric* band to decide whether a measured mean still matches.

Each entry keys on an event-variant prefix (see
:func:`repro.obs.inspect.event_key`); prefix matching lets rotated
attribute values still hit.  Entries whose cost depends on the group
size ``N`` (degraded reads, reconstructing writes) carry no numeric
band — the drift detector skips them rather than guess ``N``.
"""

from __future__ import annotations

from typing import NamedTuple


class OperationCost(NamedTuple):
    """One row of the model's cost table.

    Attributes:
        key: event-variant key prefix the row prices.
        prediction: display string for the cost table (``"-"`` and
            ``""`` mean "the model does not price this").
        lo: lower bound of the predicted transfer count, or None when
            the cost is not a run-independent constant.
        hi: upper bound (equal to ``lo`` for point predictions).
    """

    key: str
    prediction: str
    lo: float | None = None
    hi: float | None = None


OPERATION_COSTS = (
    OperationCost("array.small_write[buffered=False,twins=1]", "4", 4, 4),
    OperationCost("array.small_write[buffered=True,twins=1]", "3", 3, 3),
    OperationCost("array.small_write[buffered=False,twins=2]", "6 (4+2)",
                  6, 6),
    OperationCost("array.small_write[buffered=True,twins=2]", "5 (3+2)",
                  5, 5),
    OperationCost("array.small_write[mode=small,buffered=False]", "4", 4, 4),
    OperationCost("array.small_write[mode=small,buffered=True]", "3", 3, 3),
    OperationCost("array.small_write[mode=reconstruct", "N+1"),
    OperationCost("rda.commit", "0", 0, 0),
    OperationCost("rda.twin_flip", "0", 0, 0),
    OperationCost("rda.undo", "5-6", 5, 6),
    OperationCost("array.degraded_read", "N"),
    OperationCost("txn[outcome=committed]", "-"),
    OperationCost("txn[outcome=aborted]", "-"),
    # composite spans: the model prices the primitives inside them, not
    # the span totals (restart cost is c_s at run granularity)
    OperationCost("recovery.", "-"),
    OperationCost("checkpoint", "-"),
    OperationCost("array.rebuild", "-"),
    # REDO-only class: chain replay of one repaired sector and the
    # hybrid's un-steal promotion are run-shape dependent, so unpriced
    OperationCost("redo.single_page", "-"),
    OperationCost("redo.unsteal", "-"),
    OperationCost("rda.parity_resync", "-"),
)
"""The paper's cost model, one row per priced event variant."""

MODEL_EXPECTATIONS = tuple(
    (cost.key, cost.prediction) for cost in OPERATION_COSTS)
"""``(variant-key prefix, display prediction)`` pairs (the historical
:data:`repro.obs.inspect.MODEL_EXPECTATIONS` shape)."""


def transfer_bands() -> dict:
    """The constant-priced rows as ``{key_prefix: (lo, hi)}``.

    This is what the drift detector compares measured means against;
    ``N``-dependent and unpriced rows are excluded.
    """
    return {cost.key: (cost.lo, cost.hi) for cost in OPERATION_COSTS
            if cost.lo is not None}


def predicted_band(key: str) -> tuple | None:
    """The ``(lo, hi)`` band for an event-variant key, prefix-matched;
    None when the model has no constant price for it."""
    for cost in OPERATION_COSTS:
        if key.startswith(cost.key):
            if cost.lo is None:
                return None
            return (cost.lo, cost.hi)
    return None
