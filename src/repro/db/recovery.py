"""Recovery orchestration: transaction abort, crash restart, media rebuild.

Implements Section 4.3 of the paper plus the classical baselines it
compares against.  The invariant every path restores: **the database
equals the serial effects of committed transactions only.**

Undo sources, in the order they are applied:

1. **Parity twins** (RDA only): each dirty group's unlogged stolen page
   is rewound with ``D_old = P_w ⊕ P_c ⊕ D_new``.  This must run before
   any log-based writes touch those groups, because a log restore
   updates *both* twins and relies on the twin-XOR identity staying
   scoped to the one unlogged page.
2. **REDO** (¬FORCE restart only): committed transactions' after-images
   since the last ACC checkpoint, forward in LSN order.
3. **UNDO from the log**: losers' before-images/entries, backward in
   global LSN order.  Record-level entries store absolute old bytes, so
   re-applying them over an already-rewound page is idempotent.

Steps 2-3 run through a page cache so each touched page is read and
written once, then flushed via parity-tracking writes.
"""

from __future__ import annotations

from ..errors import RecoveryError, UnrecoverableDataError
from ..storage.geometry import PhysAddr
from ..storage.page import NO_TXN, TwinState, compute_parity
from ..txn import TxnState
from ..wal.records import (AbortRecord, BOTRecord, CommitRecord,
                           PageBeforeImage, RecordBeforeEntry)
from .policy import apply_record_image


class RecoveryManager:
    """Abort / crash / media recovery over one :class:`Database`."""

    def __init__(self, db) -> None:
        self.db = db

    # ==================== transaction abort ====================

    def abort(self, txn_id: int) -> None:
        """Roll back an active transaction and release its locks."""
        db = self.db
        txn = db.txns.require_active(txn_id)
        if txn.must_commit:
            raise RecoveryError(
                f"transaction {txn_id} lost its parity-encoded before-image "
                "to a media failure and can no longer abort")
        with db.tracer.span("recovery.abort", stats=db.stats, txn=txn_id):
            if txn.is_update_transaction:
                db._ensure_bot(txn_id)
                db.policy.logging.rollback(db, txn)
                db.undo_log.append(AbortRecord(txn_id=txn_id))
                db.undo_log.force()
            db.locks.release_all(txn_id)
            db.txns.finish(txn_id, TxnState.ABORTED)
        db._forget(txn_id)
        db.counters.transactions_aborted += 1

    # ==================== crash recovery ====================

    def crash_recover(self, fault_hook=None) -> dict:
        """Restart after :meth:`Database.crash`.

        Returns statistics: winners, losers, pages redone/undone, and
        the page transfers the restart consumed.

        ``fault_hook``, if given, is called before every recovery write
        with a progress label; raising from it models a crash *during*
        recovery (the tests drive this to prove restart idempotence —
        recovery applies absolute images and re-derives its work list
        from durable state, so being interrupted anywhere is safe).
        """
        db = self.db
        fault = fault_hook if fault_hook is not None else (lambda label: None)
        before = db.stats.snapshot()
        restart = db.tracer.span("recovery.restart", stats=db.stats,
                                 log_split=True)
        restart.__enter__()
        try:
            with db.tracer.span("recovery.phase", stats=db.stats,
                                log_split=True, phase="analysis") as span:
                db.undo_log.after_crash()
                if db.redo_log is not db.undo_log:
                    db.redo_log.after_crash()

                winners = {r.txn_id for r in db.redo_log.scan(CommitRecord)}
                aborted = {r.txn_id for r in db.undo_log.scan(AbortRecord)}
                bots = {r.txn_id for r in db.undo_log.scan(BOTRecord)}
                losers = set(bots) - winners - aborted
                span.set(winners=len(winners), losers=len(losers))

            # 0. media scan: repair latent sector errors (torn or corrupt
            # sectors left by the crash) before anything reads them.
            # Under REDO-only a repaired data page also schedules
            # single-page recovery (its durable page LSN is reset, so
            # the redo phase below replays its whole retained chain).
            sectors_repaired = self._media_scan(winners, fault)

            # 0b/1. the protection policy's restart phase: RAID
            # write-hole resync (WAL) or parity undo of unlogged stolen
            # pages (RDA; must precede log writes)
            parity_resynced, parity_undone = \
                db.policy.protection.restart_parity_phase(db, winners,
                                                          losers, fault)

            cache: dict = {}

            def page_base(page: int) -> bytes:
                if page not in cache:
                    cache[page] = db.array.read_page(page)
                return cache[page]

            # 2. REDO committed work since the last checkpoint (¬FORCE only)
            redone = db.policy.discipline.restart_redo(db, winners, cache,
                                                       page_base, fault)

            # 3. UNDO losers from the log, backward in global LSN order
            with db.tracer.span("recovery.phase", stats=db.stats,
                                log_split=True, phase="undo") as span:
                undo_records = [
                    r for r in db.undo_log.records()
                    if r.txn_id in losers
                    and isinstance(r, (PageBeforeImage, RecordBeforeEntry))
                ]
                db.undo_log.charge_read(undo_records)
                undone = 0
                for record in sorted(undo_records, key=lambda r: r.lsn,
                                     reverse=True):
                    if isinstance(record, PageBeforeImage):
                        cache[record.page_id] = record.image
                    else:
                        cache[record.page_id] = apply_record_image(
                            page_base(record.page_id), record.slot,
                            record.image)
                    undone += 1
                span.set(applied=undone)

            with db.tracer.span("recovery.phase", stats=db.stats,
                                log_split=True, phase="restore") as span:
                for page in sorted(cache):
                    fault(f"restore page {page}")
                    db._write_committed(page, cache[page])

                fault("abort records")
                for txn_id in sorted(losers):
                    db.undo_log.append(AbortRecord(txn_id=txn_id))
                db.undo_log.force()
                span.set(pages=len(cache))
        finally:
            restart.__exit__(None, None, None)

        delta = db.stats.snapshot() - before
        return {
            "winners": sorted(winners),
            "losers": sorted(losers),
            "sectors_repaired": sectors_repaired,
            "parity_resynced": parity_resynced,
            "parity_undone_pages": parity_undone,
            "redo_applied": redone,
            "log_undo_applied": undone,
            "page_transfers": delta.total,
        }

    # ==================== media scan (restart phase 0) ====================

    def _media_scan(self, winners: set, fault) -> int:
        """Repair latent sector errors surfaced by the restart scan.

        A crash can leave torn sectors (partial writes) whose checksums
        no longer match; later phases read those very sectors, so they
        are repaired first from the surviving redundancy.  Clean
        restarts skip the phase entirely (no span, no fault-hook calls).
        """
        db = self.db
        bad = [(disk.disk_id, slot)
               for disk in db.array.disks if not disk.failed
               for slot in disk.bad_sectors()]
        if not bad:
            return 0
        # data slots first: parity recompute below reads the data pages
        bad.sort(key=lambda item: (
            db.array.geometry.page_at(PhysAddr(*item)) is None, item))
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="media_scan") as span:
            for disk_id, slot in bad:
                fault(f"media repair disk {disk_id} slot {slot}")
                self._repair_sector(disk_id, slot, winners)
            span.set(sectors=len(bad))
        return len(bad)

    def _repair_sector(self, disk_id: int, slot: int, winners: set) -> None:
        """Rebuild one unreadable sector from the group's redundancy."""
        db = self.db
        geometry = db.array.geometry
        page = geometry.page_at(PhysAddr(disk_id, slot))
        if page is not None:
            # data sector: mates + current parity reconstruct it; for a
            # torn in-flight write the selected twin decides whether the
            # write completes or rolls back, matching what parity undo /
            # log undo will conclude from the same headers
            db.array.repair_page(page)
            if db.policy.redo_only:
                # single-page recovery: the repair may have rolled the
                # page back behind its durable marker (torn write
                # resolved to the old version), so forget the marker —
                # the redo phase replays the page's whole retained
                # chain forward (trim keeps chains replayable onto any
                # disk version a twin rollback can expose)
                db._durable_page_lsn.pop(page, None)
                if db.tracer.enabled:
                    db.tracer.emit("redo.single_page", page=page)
            return

        group = slot
        data = [db.array.read_page(p) for p in geometry.group_pages(group)]
        addrs = geometry.parity_addresses(group)
        if not db.array.supports_twins:
            db.array.rewrite_parity(group, data, disk_id=disk_id)
            return

        which = next(i for i, a in enumerate(addrs) if a.disk == disk_id)
        other_addr = addrs[1 - which]
        other = db.array.disks[other_addr.disk].read_header(other_addr.slot)
        if (other.state is TwinState.WORKING and other.txn_id != NO_TXN
                and other.txn_id not in winners):
            # the damaged twin was the committed parity of a dirty group:
            # it is the loser's only before-image, and the data already
            # holds the uncommitted value — detectable but not repairable
            raise UnrecoverableDataError(
                f"group {group}: committed parity twin lost to a media "
                f"error while transaction {other.txn_id} holds an "
                "unlogged stolen page in the group")
        header = db.array.disks[disk_id].read_header(slot)
        db.array.write_twin(group, which, compute_parity(data), header)

    # ==================== media recovery ====================

    def media_recover(self, disk_id: int, on_lost_undo: str = "raise"):
        """Rebuild a failed disk from the surviving redundancy.

        With RDA, the live Dirty_Set steers the twin rebuild; if the
        committed twin of a dirty group was lost and ``on_lost_undo`` is
        ``"adopt"``, the owning transactions are pinned ``must_commit``
        (their stolen pages can no longer be rolled back).
        """
        db = self.db
        with db.tracer.span("recovery.media", stats=db.stats,
                            log_split=True, disk=disk_id):
            return db.policy.protection.media_recover(db, disk_id,
                                                      on_lost_undo)
