"""X7: sweeping the parity-group size N.

The paper fixes N = 10 and notes the twin-parity storage overhead is
about (100/N)%.  N also steers the logging probability: more pages per
group means more collisions on the single unlogged slot (Eq. 5's K
spreads over S/N groups).  This ablation quantifies the trade-off the
paper leaves implicit: small N buys a lower p_l at a higher storage
price.
"""

from repro.model import logging_probability
from repro.model.page_logging import force_toc
from repro.model.params import high_update

from .conftest import write_table

SWEEP = (2, 5, 10, 20, 50)


def test_group_size_tradeoff(benchmark, results_dir):
    def campaign():
        rows = []
        for N in SWEEP:
            params = high_update(C=0.9).with_(N=N)
            K = params.P * params.f_u * params.s * params.p_u / 2.0
            p_l = logging_probability(K, params.S, params.N)
            base = force_toc(params, rda=False).throughput
            rda = force_toc(params, rda=True).throughput
            overhead = 2.0 / (N + 2)
            rows.append((N, p_l, rda / base - 1.0, overhead))
        return rows

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = ["X7: parity-group size N (page FORCE/TOC, high update, C=0.9)",
             f"{'N':>4} | {'p_l':>7} | {'RDA gain':>9} | {'overhead':>9}"]
    for N, p_l, gain, overhead in rows:
        lines.append(f"{N:4d} | {p_l:7.4f} | {gain:9.1%} | {overhead:9.1%}")
    write_table(results_dir, "ablation_group_size", "\n".join(lines))

    p_ls = [row[1] for row in rows]
    overheads = [row[3] for row in rows]
    assert p_ls == sorted(p_ls)                      # bigger N, more logging
    assert overheads == sorted(overheads, reverse=True)
    # at the paper's N = 10 the overhead claim (100/N)% extra vs single
    # parity holds and the RDA gain is still ≈ 42%
    n10 = dict((row[0], row) for row in rows)[10]
    assert abs(n10[2] - 0.42) < 0.06
    benchmark.extra_info["rows"] = [
        {"N": N, "p_l": round(p, 4), "gain": round(g, 3)}
        for N, p, g, _ in rows]


def test_database_size_scaling(benchmark, results_dir):
    """p_l falls as the database grows (K spreads over more groups):
    RDA helps bigger databases more."""

    def campaign():
        rows = []
        for S in (500, 5000, 50_000):
            params = high_update(C=0.9).with_(S=S)
            K = params.P * params.f_u * params.s * params.p_u / 2.0
            rows.append((S, logging_probability(K, S, params.N)))
        return rows

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)
    values = [p for _, p in rows]
    assert values == sorted(values, reverse=True)
    write_table(results_dir, "ablation_db_size",
                "X7b: p_l vs database size S (N=10, K=21.6)\n" + "\n".join(
                    f"S={S:6d}: p_l={p:.4f}" for S, p in rows))
