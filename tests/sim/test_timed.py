"""Tests for live service-time observation."""

import pytest

from repro.db import Database, preset
from repro.sim import Simulator, TimedObserver, WorkloadSpec


def make_db(name="page-force-rda"):
    return Database(preset(name, group_size=5, num_groups=12,
                           buffer_capacity=16))


SPEC = WorkloadSpec(concurrency=3, pages_per_txn=5, communality=0.5)


class TestAttachment:
    def test_attach_and_observe(self):
        db = make_db()
        observer = TimedObserver.attach(db)
        Simulator(db, SPEC, seed=1).run(20)
        assert observer.total_busy_ms > 0
        assert observer.busiest_ms <= observer.total_busy_ms
        assert observer.total_seeks > 0
        observer.detach()

    def test_detach_stops_accounting(self):
        db = make_db()
        observer = TimedObserver.attach(db)
        observer.detach()
        Simulator(db, SPEC, seed=1).run(10)
        assert observer.total_busy_ms == 0

    def test_double_attach_rejected(self):
        db = make_db()
        TimedObserver.attach(db)
        with pytest.raises(RuntimeError):
            TimedObserver.attach(db)

    def test_summary_is_readable(self):
        db = make_db()
        observer = TimedObserver.attach(db)
        Simulator(db, SPEC, seed=1).run(10)
        text = observer.summary()
        assert "busy" in text and "seeks" in text

    def test_balance_bounds(self):
        db = make_db()
        observer = TimedObserver.attach(db)
        Simulator(db, SPEC, seed=1).run(20)
        assert observer.balance() >= 1.0


class TestBuiltinTiming:
    def test_timed_simulator_reports_busy_time(self):
        db = make_db()
        sim = Simulator(db, SPEC, seed=9, timed=True)
        report = sim.run(15)
        assert report.extra["busy_ms"] > 0
        assert report.extra["busiest_arm_ms"] <= report.extra["busy_ms"]
        assert report.extra["seeks"] > 0

    def test_untimed_simulator_has_no_timing_keys(self):
        report = Simulator(make_db(), SPEC, seed=9).run(10)
        assert "busy_ms" not in report.extra


class TestComparative:
    def test_busy_time_grows_with_work(self):
        """Device time tracks the transfer counts the model reasons
        about (only array devices are observed; the log devices are
        separate, as the paper assumes)."""
        results = []
        for transactions in (15, 45):
            db = make_db()
            observer = TimedObserver.attach(db)
            Simulator(db, SPEC, seed=3).run(transactions)
            results.append(observer.total_busy_ms)
            observer.detach()
        assert results[1] > results[0] * 1.5
