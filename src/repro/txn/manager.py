"""Transaction manager: id allocation, lifecycle, and the active set.

The manager owns transaction objects and their state transitions; the
*work* of commit and abort (forcing pages, writing EOT records, undo)
is orchestrated by the recovery layer, which calls back into
:meth:`TransactionManager.finish`.
"""

from __future__ import annotations

from ..errors import InvalidTransactionState
from .transaction import Transaction, TxnState


class TransactionManager:
    """Registry and lifecycle authority for transactions."""

    def __init__(self) -> None:
        self._next_id = 1
        self._transactions: dict = {}

    def begin(self) -> Transaction:
        """Start a new transaction (the BOT event)."""
        txn = Transaction(txn_id=self._next_id)
        self._next_id += 1
        self._transactions[txn.txn_id] = txn
        return txn

    def get(self, txn_id: int) -> Transaction:
        """Look up a transaction by id."""
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise InvalidTransactionState(f"unknown transaction {txn_id}") from None

    def require_active(self, txn_id: int) -> Transaction:
        """Look up a transaction and insist it is still running."""
        txn = self.get(txn_id)
        if not txn.is_active:
            raise InvalidTransactionState(
                f"transaction {txn_id} is {txn.state.value}, not active")
        return txn

    def finish(self, txn_id: int, outcome: TxnState) -> Transaction:
        """Transition an active transaction to COMMITTED or ABORTED."""
        if outcome not in (TxnState.COMMITTED, TxnState.ABORTED):
            raise ValueError("outcome must be COMMITTED or ABORTED")
        txn = self.require_active(txn_id)
        txn.state = outcome
        return txn

    def active_transactions(self) -> list:
        """Active transactions, in begin order."""
        return [t for t in self._transactions.values() if t.is_active]

    def committed_ids(self) -> set:
        """Ids of committed transactions (used by twin selection during
        recovery)."""
        return {t.txn_id for t in self._transactions.values()
                if t.state is TxnState.COMMITTED}

    def lose_memory(self) -> None:
        """Crash simulation: the in-memory registry vanishes.

        Ids keep increasing across the crash so stamps stay unique.
        """
        self._transactions.clear()

    def adopt(self, txn: Transaction) -> None:
        """Re-register a transaction reconstructed from the log."""
        self._transactions[txn.txn_id] = txn
        if txn.txn_id >= self._next_id:
            self._next_id = txn.txn_id + 1
