#!/usr/bin/env python3
"""Cross-validation: the paper's analytical model vs the live system.

The paper's evaluation is purely analytical.  Because this reproduction
also *built* the system, we can check the model's central quantity —
the logging probability p_l of Eq. 5 — against reality: run the
executable database, count which steals actually needed an UNDO record,
and compare.  Also compares the relative RDA throughput gain predicted
by the model with the gain the simulator measures.

Run:  python examples/analytical_vs_simulation.py
"""

from repro.db import Database, preset
from repro.model import logging_probability
from repro.model.page_logging import force_toc
from repro.model.params import ModelParams
from repro.sim import Simulator, WorkloadSpec


def scaled_params(C):
    """Model parameters matching the (smaller) simulated configuration."""
    return ModelParams(B=40, S=200, N=5, P=4, s=6, f_u=0.8, p_u=0.9,
                      p_b=0.01, C=C, T=5e6)


def make_db():
    return Database(preset("page-force-rda", group_size=5, num_groups=40,
                           buffer_capacity=40))


def main():
    print("=== Eq. 5 logging probability: model vs measured ===")
    print(f"{'C':>5} | {'p_l (Eq. 5)':>12} | {'p_l (measured)':>14} "
          f"| {'steals':>7}")
    for C in (0.2, 0.5, 0.8):
        params = scaled_params(C)
        K = params.P * params.f_u * params.s * params.p_u / 2.0
        predicted = logging_probability(K, params.S, params.N)
        db = make_db()
        spec = WorkloadSpec(concurrency=params.P, pages_per_txn=params.s,
                            update_txn_fraction=params.f_u,
                            update_probability=params.p_u,
                            abort_probability=params.p_b, communality=C)
        Simulator(db, spec, seed=17).run(400)
        measured = 1.0 - db.counters.unlogged_fraction
        print(f"{C:5.1f} | {predicted:12.3f} | {measured:14.3f} "
              f"| {db.counters.steals:7d}")

    print("\n=== relative RDA gain: model vs simulator (FORCE/TOC) ===")
    print(f"{'C':>5} | {'model gain':>10} | {'measured gain':>13}")
    for C in (0.2, 0.5, 0.8):
        params = scaled_params(C)
        model_gain = (force_toc(params, rda=True).throughput
                      / force_toc(params, rda=False).throughput - 1.0)
        spec = WorkloadSpec(concurrency=params.P, pages_per_txn=params.s,
                            update_txn_fraction=params.f_u,
                            update_probability=params.p_u,
                            abort_probability=params.p_b, communality=C)
        results = {}
        for name in ("page-force-rda", "page-force-log"):
            db = Database(preset(name, group_size=5, num_groups=40,
                                 buffer_capacity=40))
            results[name] = Simulator(db, spec, seed=23).run(300).throughput()
        measured_gain = results["page-force-rda"] / results["page-force-log"] - 1
        print(f"{C:5.1f} | {model_gain:9.1%} | {measured_gain:12.1%}")

    print("\nThe model and the executable system agree on the direction and "
          "rough size\nof the RDA benefit; absolute throughputs differ "
          "because the simulated\nconfiguration is far smaller than the "
          "paper's (B=300, S=5000).")


if __name__ == "__main__":
    main()
