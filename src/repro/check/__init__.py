"""Conformance checking: histories, serializability, invariants, diffing.

The paper's correctness argument rests on properties that end-state
comparisons cannot observe: the committed twin XOR-encodes the
before-image of at most one unlogged page per parity group (Section
4.2), twin flips are pure timestamp ordering (Section 4.1), steals
respect WAL-before-data, and strict two-phase locking yields strict
(hence serializable) histories.  This package states those properties
as executable oracles:

``history``
    Typed, JSON-serializable operation histories plus a recorder the
    :class:`~repro.db.database.Database` drives, and a reconstructor
    that rebuilds an equal history from ``history.*`` tracer events.
``serializability``
    Conflict-graph serializability plus recoverable / ACA / strict
    classification of a recorded history.
``invariants``
    Online invariant engine with pluggable rules evaluated at
    commit/steal/checkpoint/restart barriers, and one deliberate
    mutant per rule proving the rule fires.
``differential``
    Replays the same seeded workload against a dict-based reference
    database and diffs read results and final committed states across
    all recovery classes.
"""

from .differential import (ConformanceRun, DifferentialMirror,
                           ReferenceDatabase, conformance_matrix,
                           run_conformance)
from .history import History, HistoryEvent, HistoryRecorder, history_from_trace
from .invariants import (DirtySetBoundRule, InvariantEngine,
                         LsnMonotonicityRule, MutantError,
                         TwinParityIdentityRule, WalBeforeDataRule,
                         WriteBehindRule, check_restart, default_rules)
from .serializability import SerializabilityReport, analyze

__all__ = [
    "ConformanceRun",
    "DifferentialMirror",
    "DirtySetBoundRule",
    "History",
    "HistoryEvent",
    "HistoryRecorder",
    "InvariantEngine",
    "LsnMonotonicityRule",
    "MutantError",
    "ReferenceDatabase",
    "SerializabilityReport",
    "TwinParityIdentityRule",
    "WalBeforeDataRule",
    "WriteBehindRule",
    "analyze",
    "check_restart",
    "conformance_matrix",
    "default_rules",
    "history_from_trace",
    "run_conformance",
]
