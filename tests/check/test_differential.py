"""The differential oracle: reference semantics, divergence
detection, and clean engine runs."""

from repro.check import (ConformanceRun, DifferentialMirror,
                         ReferenceDatabase, run_conformance)
from repro.check.differential import _DEFAULT_OVERRIDES
from repro.db import Database, preset
from repro.sim import Simulator, WorkloadSpec
from repro.storage import ZERO_PAGE, make_page


class TestReferenceDatabase:
    def test_read_your_own_writes(self):
        ref = ReferenceDatabase()
        ref.begin(1)
        ref.write(1, (0, None), b"mine")
        assert ref.read(1, (0, None)) == b"mine"
        assert ref.read(2, (0, None)) == ZERO_PAGE

    def test_commit_publishes(self):
        ref = ReferenceDatabase()
        ref.begin(1)
        ref.write(1, (0, None), b"v1")
        ref.commit(1)
        assert ref.read(2, (0, None)) == b"v1"

    def test_abort_discards(self):
        ref = ReferenceDatabase()
        ref.begin(1)
        ref.write(1, (0, None), b"v1")
        ref.abort(1)
        assert ref.read(2, (0, None)) == ZERO_PAGE

    def test_crash_kills_all_staging(self):
        ref = ReferenceDatabase()
        ref.begin(1)
        ref.write(1, (0, None), b"doomed")
        ref.begin(2)
        ref.write(2, (1, None), b"also doomed")
        ref.crash()
        ref.commit(1)   # staging is gone; commit publishes nothing
        assert ref.read(3, (0, None)) == ZERO_PAGE
        assert ref.read(3, (1, None)) == ZERO_PAGE


class TestDifferentialMirror:
    def test_matching_read_is_clean(self):
        mirror = DifferentialMirror()
        mirror.begin(1)
        mirror.write(1, 0, None, b"x")
        mirror.read(1, 0, None, b"x")
        assert mirror.violations == []
        assert mirror.reads_checked == 1

    def test_divergent_read_flagged(self):
        mirror = DifferentialMirror()
        mirror.begin(1)
        mirror.read(1, 0, None, b"phantom")
        assert len(mirror.violations) == 1
        assert mirror.violations[0].kind == "read-divergence"

    def test_final_state_diff_catches_corruption(self):
        db = Database(preset("page-force-rda", **_DEFAULT_OVERRIDES))
        mirror = DifferentialMirror()
        simulator = Simulator(
            db, WorkloadSpec(concurrency=2, pages_per_txn=3),
            seed=3, conformance=mirror)
        simulator.run(10)
        assert mirror.final_state_diff(db) == []
        # corrupt one committed page behind the engine's back
        victim = next(page for (page, _slot) in mirror.reference.committed)
        db.array.write_data_only(victim, make_page(b"gremlin"))
        db.buffer.invalidate(victim)
        diffs = mirror.final_state_diff(db)
        assert any(v.kind == "state-divergence" for v in diffs)


class TestRunConformance:
    def test_returns_structured_run(self):
        run = run_conformance("page-force-rda", transactions=15, seed=2)
        assert isinstance(run, ConformanceRun)
        assert run.clean
        assert run.reads_checked > 0
        assert run.barrier_counts.get("commit", 0) > 0
        payload = run.to_dict()
        assert payload["clean"] is True
        assert payload["serializability"]["serializable"] is True

    def test_record_mode_run(self):
        run = run_conformance("record-force-rda", transactions=15, seed=2)
        assert run.clean
        assert run.reads_checked > 0

    def test_crash_every_run(self):
        run = run_conformance("page-noforce-rda", transactions=15, seed=2,
                              crash_every=5)
        assert run.clean
        assert run.history.of_op("crash")
        assert run.history.of_op("restart")
