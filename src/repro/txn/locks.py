"""Lock manager: shared/exclusive locks at page or record granularity.

The paper evaluates both **page locking** (Section 5.2, where concurrent
transactions' page sets are disjoint) and **record locking** (Section
5.3, where they are not).  Resources are arbitrary hashable keys — the
database layer uses ``("page", p)`` and ``("rec", p, slot)``.

The manager supports a queued-waiting discipline so a discrete-event
simulator can model blocking: :meth:`LockManager.acquire` either grants
immediately or enqueues the request and reports ``False``; releases hand
the lock to compatible waiters in FIFO order.  Deadlocks are detected
eagerly on enqueue by a wait-for-graph cycle search and raise
:class:`~repro.errors.DeadlockError` naming the requester as victim.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from ..errors import DeadlockError, LockError


class LockMode(Enum):
    """Lock modes: shared (read) and exclusive (write)."""

    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    return held is LockMode.SHARED and wanted is LockMode.SHARED


@dataclass
class _Entry:
    """State of one lockable resource."""

    holders: dict = field(default_factory=dict)   # txn_id -> LockMode
    waiters: deque = field(default_factory=deque)  # (txn_id, LockMode)


@dataclass(frozen=True)
class Grant:
    """A lock handed to a waiter after a release."""

    txn_id: int
    resource: object
    mode: LockMode


class LockManager:
    """Strict two-phase locking with FIFO waiting and deadlock detection."""

    def __init__(self) -> None:
        self._entries: dict = {}
        self._held_by_txn: dict = {}
        self._wait_count: dict = {}   # txn_id -> queued requests

    # -- queries ------------------------------------------------------------------

    def holds(self, txn_id: int, resource, mode: LockMode | None = None) -> bool:
        """True if the transaction holds a lock on ``resource``;
        with ``mode``, a lock at least that strong."""
        entry = self._entries.get(resource)
        if entry is None or txn_id not in entry.holders:
            return False
        if mode is None:
            return True
        held = entry.holders[txn_id]
        return held is LockMode.EXCLUSIVE or held is mode

    def waiting(self, txn_id: int) -> bool:
        """True if the transaction is queued on some resource."""
        return bool(self._wait_count.get(txn_id))

    def locks_of(self, txn_id: int) -> list:
        """Resources currently locked by the transaction."""
        return sorted(self._held_by_txn.get(txn_id, ()), key=repr)

    # -- acquire / release ----------------------------------------------------------

    def acquire(self, txn_id: int, resource, mode: LockMode) -> bool:
        """Request a lock.

        Returns True if granted immediately (including already-held and
        legal upgrades), False if the request was enqueued.

        Raises:
            DeadlockError: if enqueueing would close a wait-for cycle.
        """
        entry = self._entries.get(resource)
        if entry is None:
            # uncontended first touch: grant without scanning anything
            entry = self._entries[resource] = _Entry()
            entry.holders[txn_id] = mode
            held = self._held_by_txn.get(txn_id)
            if held is None:
                self._held_by_txn[txn_id] = {resource}
            else:
                held.add(resource)
            return True
        held = entry.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or held is mode:
                return True
            # S -> X upgrade: immediate if sole holder and nobody queued
            if len(entry.holders) == 1 and not entry.waiters:
                entry.holders[txn_id] = LockMode.EXCLUSIVE
                return True
            self._enqueue(txn_id, resource, mode, entry)
            return False
        if not entry.waiters and all(
                _compatible(h, mode) for h in entry.holders.values()):
            entry.holders[txn_id] = mode
            self._held_by_txn.setdefault(txn_id, set()).add(resource)
            return True
        self._enqueue(txn_id, resource, mode, entry)
        return False

    def _enqueue(self, txn_id: int, resource, mode: LockMode, entry: _Entry) -> None:
        entry.waiters.append((txn_id, mode))
        cycle = self._find_cycle(txn_id)
        if cycle:
            entry.waiters.pop()
            raise DeadlockError(txn_id, tuple(cycle))
        self._wait_count[txn_id] = self._wait_count.get(txn_id, 0) + 1

    def _waiter_granted(self, txn_id: int) -> None:
        count = self._wait_count.get(txn_id, 0) - 1
        if count > 0:
            self._wait_count[txn_id] = count
        else:
            self._wait_count.pop(txn_id, None)

    def release_all(self, txn_id: int) -> list:
        """Release every lock and queued request of a transaction (EOT).

        Returns the :class:`Grant` list of waiters promoted as a result.
        """
        grants = []
        if not self._wait_count.get(txn_id):
            # fast path: the transaction is queued nowhere, so only the
            # entries it holds can change.  Grant order matches the full
            # sweep (held resources in insertion order), and the sweep's
            # re-promotion of untouched entries is a no-op because
            # promotion is eager at every release.
            for resource in list(self._held_by_txn.get(txn_id, ())):
                entry = self._entries[resource]
                del entry.holders[txn_id]
                grants.extend(self._promote(resource, entry))
                if not entry.holders and not entry.waiters:
                    del self._entries[resource]
            self._held_by_txn.pop(txn_id, None)
            return grants
        for resource in list(self._held_by_txn.get(txn_id, ())):
            entry = self._entries[resource]
            del entry.holders[txn_id]
            grants.extend(self._promote(resource, entry))
        self._held_by_txn.pop(txn_id, None)
        for resource, entry in list(self._entries.items()):
            entry.waiters = deque(
                (t, m) for t, m in entry.waiters if t != txn_id)
            grants.extend(self._promote(resource, entry))
            if not entry.holders and not entry.waiters:
                del self._entries[resource]
        self._wait_count.pop(txn_id, None)
        return grants

    def release(self, txn_id: int, resource) -> list:
        """Release a single lock (non-strict use; tests and internals)."""
        entry = self._entries.get(resource)
        if entry is None or txn_id not in entry.holders:
            raise LockError(f"txn {txn_id} does not hold {resource!r}")
        del entry.holders[txn_id]
        self._held_by_txn[txn_id].discard(resource)
        grants = self._promote(resource, entry)
        if not entry.holders and not entry.waiters:
            del self._entries[resource]
        return grants

    def _promote(self, resource, entry: _Entry) -> list:
        grants = []
        while entry.waiters:
            txn_id, mode = entry.waiters[0]
            held = entry.holders.get(txn_id)
            if held is not None:
                # queued upgrade: needs sole holdership
                if len(entry.holders) == 1:
                    entry.holders[txn_id] = LockMode.EXCLUSIVE
                    entry.waiters.popleft()
                    self._waiter_granted(txn_id)
                    grants.append(Grant(txn_id, resource, LockMode.EXCLUSIVE))
                    continue
                break
            if all(_compatible(h, mode) for h in entry.holders.values()):
                entry.holders[txn_id] = mode
                self._held_by_txn.setdefault(txn_id, set()).add(resource)
                entry.waiters.popleft()
                self._waiter_granted(txn_id)
                grants.append(Grant(txn_id, resource, mode))
                continue
            break
        return grants

    # -- deadlock detection ------------------------------------------------------------

    def wait_for_graph(self) -> dict:
        """``waiter -> {holders blocking it}`` over all resources."""
        graph: dict = {}
        for entry in self._entries.values():
            blockers = set(entry.holders)
            for txn_id, _mode in entry.waiters:
                edges = graph.setdefault(txn_id, set())
                edges.update(b for b in blockers if b != txn_id)
                blockers.add(txn_id)  # FIFO: later waiters wait on earlier
        return graph

    def _find_cycle(self, start: int):
        graph = self.wait_for_graph()
        path, on_path = [], set()

        def visit(node):
            if node in on_path:
                return path[path.index(node):]
            if node not in graph:
                return None
            path.append(node)
            on_path.add(node)
            for succ in graph[node]:
                found = visit(succ)
                if found:
                    return found
            path.pop()
            on_path.discard(node)
            return None

        return visit(start)
