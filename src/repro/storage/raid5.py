"""Factories for RAID-5 (data-striped, rotated-parity) arrays.

Paper Figure 1 (single parity) and Figure 4 (twin parity).  Data
striping interleaves consecutive logical pages round-robin across the
disks, so large accesses engage every arm; the rotated parity avoids the
dedicated-parity-disk bottleneck of RAID-4.

Parity arithmetic in both organizations runs on the vectorized page
kernels of :mod:`repro.storage.kernels` (numpy or stdlib C-speed tier,
selected at import time).
"""

from __future__ import annotations

from .array import SingleParityArray
from .geometry import raid5_geometry
from .iostats import IOStats
from .twin_array import TwinParityArray


def make_raid5(group_size: int, num_groups: int,
               stats: IOStats | None = None, tracer=None,
               metrics=None) -> SingleParityArray:
    """A classical RAID-5 array: N data disks' worth of pages + 1 parity
    page per group, rotated (Figure 1)."""
    return SingleParityArray(raid5_geometry(group_size, num_groups, twin=False),
                             stats=stats, tracer=tracer, metrics=metrics)


def make_twin_raid5(group_size: int, num_groups: int,
                    stats: IOStats | None = None, tracer=None,
                    metrics=None) -> TwinParityArray:
    """RAID-5 with the twin-page parity scheme for RDA recovery
    (Figure 4): two rotated parity pages per group on distinct disks."""
    return TwinParityArray(raid5_geometry(group_size, num_groups, twin=True),
                           stats=stats, tracer=tracer, metrics=metrics)
