"""Slotted pages: variable-length records inside a fixed-size page.

The record-logging experiments (paper Section 5.3) operate on records of
average length ``r`` packed into physical pages of length ``l_p``.  This
module provides the classic slotted-page layout:

    [record_count: u16][free_end: u16][slot directory ...]  ...free...  [record data]

The slot directory grows forward from the 4-byte header, one ``(offset
u16, length u16)`` entry per slot; record bytes grow backward from the
end of the page.  Slot ids are stable across updates and compaction
(deleted slots become tombstones and can be reused), which lets a record
id ``(page, slot)`` survive for the record's lifetime — the property the
record-level log entries rely on.
"""

from __future__ import annotations

import struct

from ..storage.page import PAGE_SIZE

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_TOMBSTONE_OFFSET = 0xFFFF


class PageFullError(Exception):
    """The page cannot fit the record even after compaction."""


class SlottedPage:
    """In-memory view of one slotted page.

    Build with :meth:`empty` or :meth:`from_bytes`; mutate with
    :meth:`insert` / :meth:`update` / :meth:`delete`; serialize with
    :meth:`to_bytes` (always exactly :data:`PAGE_SIZE` bytes).
    """

    def __init__(self, slots: list) -> None:
        # slots: list of bytes payloads, None for tombstones
        self._slots = slots

    # -- constructors --------------------------------------------------------------

    @classmethod
    def empty(cls) -> "SlottedPage":
        """A fresh page with no records."""
        return cls([])

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SlottedPage":
        """Parse a serialized page.

        A zero page (never-written disk sector) parses as an empty page.

        Raises:
            ValueError: wrong size or inconsistent directory.
        """
        if len(blob) != PAGE_SIZE:
            raise ValueError(f"slotted page must be {PAGE_SIZE} bytes")
        count, _free_end = _HEADER.unpack_from(blob, 0)
        slots = []
        for index in range(count):
            offset, length = _SLOT.unpack_from(blob, _HEADER.size + index * _SLOT.size)
            if offset == _TOMBSTONE_OFFSET:
                slots.append(None)
                continue
            if offset + length > PAGE_SIZE:
                raise ValueError(f"slot {index} points past end of page")
            slots.append(blob[offset:offset + length])
        return cls(slots)

    # -- geometry ---------------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Directory size, including tombstones."""
        return len(self._slots)

    @property
    def record_count(self) -> int:
        """Live records."""
        return sum(1 for s in self._slots if s is not None)

    @property
    def used_bytes(self) -> int:
        """Header + directory + live record bytes."""
        return (_HEADER.size + len(self._slots) * _SLOT.size
                + sum(len(s) for s in self._slots if s is not None))

    @property
    def free_space(self) -> int:
        """Bytes available for new record data (assuming a new slot)."""
        return max(0, PAGE_SIZE - self.used_bytes - _SLOT.size)

    def slots(self) -> list:
        """Ids of live slots."""
        return [i for i, s in enumerate(self._slots) if s is not None]

    # -- record operations ----------------------------------------------------------------

    def _check_record(self, record: bytes) -> None:
        if not isinstance(record, (bytes, bytearray)):
            raise TypeError("record must be bytes")
        if len(record) == 0:
            raise ValueError("record must be non-empty")

    def insert(self, record: bytes) -> int:
        """Add a record; returns its slot id (tombstones are reused).

        Raises:
            PageFullError: if the record does not fit.
        """
        self._check_record(record)
        for index, slot in enumerate(self._slots):
            if slot is None:
                if self.used_bytes + len(record) > PAGE_SIZE:
                    raise PageFullError("no room for record data")
                self._slots[index] = bytes(record)
                return index
        if self.used_bytes + _SLOT.size + len(record) > PAGE_SIZE:
            raise PageFullError("no room for record data and slot entry")
        self._slots.append(bytes(record))
        return len(self._slots) - 1

    def read(self, slot: int) -> bytes:
        """Record bytes at ``slot``.

        Raises:
            KeyError: empty or out-of-range slot.
        """
        if not 0 <= slot < len(self._slots) or self._slots[slot] is None:
            raise KeyError(f"no record at slot {slot}")
        return self._slots[slot]

    def update(self, slot: int, record: bytes) -> None:
        """Replace the record at ``slot`` (any new length that fits).

        Raises:
            KeyError: empty slot.  PageFullError: would overflow.
        """
        self._check_record(record)
        old = self.read(slot)
        if self.used_bytes - len(old) + len(record) > PAGE_SIZE:
            raise PageFullError("updated record does not fit")
        self._slots[slot] = bytes(record)

    def place(self, slot: int, record: bytes) -> None:
        """Put a record at a *specific* slot id (recovery: undo of a
        delete / redo of an insert must reuse the original slot).

        Extends the directory with tombstones if needed; replaces any
        record already at the slot.

        Raises:
            PageFullError: if the record (plus directory growth) doesn't fit.
        """
        self._check_record(record)
        grow = max(0, slot + 1 - len(self._slots))
        old_len = len(self._slots[slot]) if slot < len(self._slots) and \
            self._slots[slot] is not None else 0
        if self.used_bytes + grow * _SLOT.size - old_len + len(record) > PAGE_SIZE:
            raise PageFullError("no room to place record at slot")
        self._slots.extend([None] * grow)
        self._slots[slot] = bytes(record)

    def delete(self, slot: int) -> bytes:
        """Remove the record at ``slot`` (slot id becomes a tombstone).

        Returns the removed bytes.
        """
        record = self.read(slot)
        self._slots[slot] = None
        return record

    # -- serialization -----------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to exactly :data:`PAGE_SIZE` bytes (records packed
        from the page end; tombstones keep their directory entries)."""
        out = bytearray(PAGE_SIZE)
        _HEADER.pack_into(out, 0, len(self._slots), PAGE_SIZE)
        cursor = PAGE_SIZE
        for index, slot in enumerate(self._slots):
            entry_at = _HEADER.size + index * _SLOT.size
            if slot is None:
                _SLOT.pack_into(out, entry_at, _TOMBSTONE_OFFSET, 0)
                continue
            cursor -= len(slot)
            out[cursor:cursor + len(slot)] = slot
            _SLOT.pack_into(out, entry_at, cursor, len(slot))
        _HEADER.pack_into(out, 0, len(self._slots), cursor)
        return bytes(out)
