"""Tests for the four cost models: internal consistency + paper shapes.

The shape assertions encode the paper's textual claims (the quantities a
reproduction must get right even where the scanned figures are
ambiguous) — see DESIGN.md §4 "Shape targets".
"""

import pytest

from repro.errors import ModelError
from repro.model import page_logging, record_logging
from repro.model.params import ModelParams, high_retrieval, high_update

ALL_MODELS = [page_logging.force_toc, page_logging.noforce_acc,
              record_logging.force_toc, record_logging.noforce_acc]


class TestParams:
    def test_paper_constants(self):
        p = high_update()
        assert (p.B, p.S, p.N, p.P) == (300, 5000, 10, 6)
        assert (p.s, p.f_u, p.p_u, p.d) == (10, 0.8, 0.9, 3)
        p = high_retrieval()
        assert (p.s, p.f_u, p.p_u, p.d) == (40, 0.1, 0.3, 8)
        assert p.T == 5e6

    def test_with_override(self):
        assert high_update().with_(s=20).s == 20

    def test_validation(self):
        with pytest.raises(ModelError):
            ModelParams(C=1.0)
        with pytest.raises(ModelError):
            ModelParams(B=4, C=0.9, s=10)
        with pytest.raises(ModelError):
            ModelParams(d=11, s=10)


class TestInternalConsistency:
    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize("rda", [False, True])
    @pytest.mark.parametrize("env", [high_update, high_retrieval])
    def test_costs_positive_and_finite(self, model, rda, env):
        for C in (0.0, 0.3, 0.6, 0.9):
            result = model(env(C=C), rda=rda)
            assert result.c_E > 0
            assert result.c_u >= result.c_l
            assert result.throughput > 0
            assert result.c_b >= 0 and result.c_s >= 0

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_update_txns_cost_more_than_retrievals(self, model):
        result = model(high_update(C=0.5), rda=True)
        assert result.c_u > result.c_r

    @pytest.mark.parametrize("model", [page_logging.noforce_acc,
                                       record_logging.noforce_acc])
    def test_acc_has_checkpoints(self, model):
        result = model(high_update(C=0.5), rda=False)
        assert result.c_c > 0
        assert result.checkpoint_interval is not None
        assert 0 < result.checkpoint_interval < high_update().T

    @pytest.mark.parametrize("model", [page_logging.force_toc,
                                       record_logging.force_toc])
    def test_toc_has_no_checkpoints(self, model):
        result = model(high_update(C=0.5), rda=False)
        assert result.c_c == 0.0
        assert result.checkpoint_interval is None

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_rda_reports_small_logging_probability(self, model):
        result = model(high_update(C=0.5), rda=True)
        assert 0.0 <= result.p_l < 0.5
        baseline = model(high_update(C=0.5), rda=False)
        assert baseline.p_l == 1.0

    def test_describe_mentions_rda(self):
        result = page_logging.force_toc(high_update(C=0.5), rda=True)
        assert "RDA" in result.describe()


class TestPaperShapes:
    """The claims the paper states in prose (DESIGN.md shape targets)."""

    def test_fig9_rda_benefit_42_percent_high_update(self):
        p = high_update(C=0.9)
        base = page_logging.force_toc(p, rda=False).throughput
        rda = page_logging.force_toc(p, rda=True).throughput
        assert rda / base - 1.0 == pytest.approx(0.42, abs=0.05)

    def test_fig9_throughput_magnitudes(self):
        """Figure 9 high-update axis runs ≈ 48 800 .. 77 300."""
        lo = page_logging.force_toc(high_update(C=0.0), rda=False).throughput
        hi = page_logging.force_toc(high_update(C=0.9), rda=True).throughput
        assert lo == pytest.approx(48800, rel=0.10)
        assert hi == pytest.approx(77300, rel=0.10)

    def test_fig9_benefit_grows_with_communality(self):
        gains = []
        for C in (0.1, 0.5, 0.9):
            p = high_update(C=C)
            base = page_logging.force_toc(p, rda=False).throughput
            rda = page_logging.force_toc(p, rda=True).throughput
            gains.append(rda / base)
        assert gains == sorted(gains)

    def test_fig9_high_retrieval_benefit_smaller(self):
        upd = high_update(C=0.9)
        ret = high_retrieval(C=0.9)
        gain_upd = (page_logging.force_toc(upd, True).throughput
                    / page_logging.force_toc(upd, False).throughput)
        gain_ret = (page_logging.force_toc(ret, True).throughput
                    / page_logging.force_toc(ret, False).throughput)
        assert gain_ret < gain_upd

    def test_fig10_noforce_beats_force_without_rda(self):
        p = high_update(C=0.9)
        force = page_logging.force_toc(p, rda=False).throughput
        noforce = page_logging.noforce_acc(p, rda=False).throughput
        assert noforce > force

    def test_fig10_crossover_force_rda_beats_noforce(self):
        """The paper's page-logging headline: FORCE/TOC *with* RDA
        outperforms ¬FORCE/ACC (with or without RDA)."""
        p = high_update(C=0.9)
        force_rda = page_logging.force_toc(p, rda=True).throughput
        assert force_rda > page_logging.noforce_acc(p, rda=False).throughput
        assert force_rda > page_logging.noforce_acc(p, rda=True).throughput

    def test_fig11_record_force_benefit_small(self):
        p = high_update(C=0.9)
        base = record_logging.force_toc(p, rda=False).throughput
        rda = record_logging.force_toc(p, rda=True).throughput
        assert 0.0 < rda / base - 1.0 < 0.10

    def test_fig11_throughput_magnitudes(self):
        """Figure 11 high-update axis runs ≈ 150 600 .. 215 900."""
        lo = record_logging.force_toc(high_update(C=0.0), rda=False).throughput
        hi = record_logging.force_toc(high_update(C=0.9), rda=True).throughput
        assert lo == pytest.approx(150600, rel=0.10)
        assert hi == pytest.approx(215900, rel=0.10)

    def test_fig12_record_noforce_benefit_14_percent(self):
        p = high_update(C=0.9)
        base = record_logging.noforce_acc(p, rda=False).throughput
        rda = record_logging.noforce_acc(p, rda=True).throughput
        assert rda / base - 1.0 == pytest.approx(0.14, abs=0.04)

    def test_fig12_noforce_beats_force_with_record_logging(self):
        """With record logging the paper's page-logging crossover does
        NOT happen: ¬FORCE/ACC stays ahead even against FORCE+RDA."""
        p = high_update(C=0.9)
        assert record_logging.noforce_acc(p, rda=False).throughput > \
            record_logging.force_toc(p, rda=True).throughput

    def test_fig13_benefit_range_6_to_70_percent(self):
        def gain(s):
            p = high_update(C=0.9).with_(s=s)
            return 100.0 * (
                record_logging.noforce_acc(p, True).throughput
                / record_logging.noforce_acc(p, False).throughput - 1.0)

        assert gain(5) == pytest.approx(6.0, abs=2.0)
        assert gain(45) == pytest.approx(70.0, abs=6.0)

    def test_fig13_benefit_monotone_in_s(self):
        gains = []
        for s in (5, 15, 25, 35, 45):
            p = high_update(C=0.9).with_(s=s)
            gains.append(record_logging.noforce_acc(p, True).throughput
                         / record_logging.noforce_acc(p, False).throughput)
        assert gains == sorted(gains)

    def test_rda_never_hurts_significantly(self):
        """RDA may cost a little (extra twin writes) but must never lose
        more than a couple of percent anywhere in the sweep."""
        for env in (high_update, high_retrieval):
            for C in (0.0, 0.3, 0.6, 0.9):
                for model in ALL_MODELS:
                    base = model(env(C=C), rda=False).throughput
                    rda = model(env(C=C), rda=True).throughput
                    assert rda > base * 0.97
