"""Recovery orchestration: transaction abort, crash restart, media rebuild.

Implements Section 4.3 of the paper plus the classical baselines it
compares against.  The invariant every path restores: **the database
equals the serial effects of committed transactions only.**

Undo sources, in the order they are applied:

1. **Parity twins** (RDA only): each dirty group's unlogged stolen page
   is rewound with ``D_old = P_w ⊕ P_c ⊕ D_new``.  This must run before
   any log-based writes touch those groups, because a log restore
   updates *both* twins and relies on the twin-XOR identity staying
   scoped to the one unlogged page.
2. **REDO** (¬FORCE restart only): committed transactions' after-images
   since the last ACC checkpoint, forward in LSN order.
3. **UNDO from the log**: losers' before-images/entries, backward in
   global LSN order.  Record-level entries store absolute old bytes, so
   re-applying them over an already-rewound page is idempotent.

Steps 2-3 run through a page cache so each touched page is read and
written once, then flushed via parity-tracking writes.
"""

from __future__ import annotations

from ..errors import RecoveryError, UnrecoverableDataError
from ..storage.geometry import PhysAddr
from ..storage.page import NO_TXN, TwinState, compute_parity
from ..txn import TxnState
from ..wal.records import (AbortRecord, BOTRecord, CheckpointRecord,
                           CommitRecord, PageAfterImage, PageBeforeImage,
                           RecordAfterEntry, RecordBeforeEntry)
from .slotted_page import SlottedPage


def _apply_record_image(page_bytes: bytes, slot: int, image: bytes) -> bytes:
    """Set ``slot`` of a slotted page to ``image`` (empty = delete)."""
    sp = SlottedPage.from_bytes(page_bytes)
    if image == b"":
        try:
            sp.delete(slot)
        except KeyError:
            pass                      # undoing an insert that never landed
    else:
        sp.place(slot, image)
    return sp.to_bytes()


class RecoveryManager:
    """Abort / crash / media recovery over one :class:`Database`."""

    def __init__(self, db) -> None:
        self.db = db

    # ==================== transaction abort ====================

    def abort(self, txn_id: int) -> None:
        """Roll back an active transaction and release its locks."""
        db = self.db
        txn = db.txns.require_active(txn_id)
        if txn.must_commit:
            raise RecoveryError(
                f"transaction {txn_id} lost its parity-encoded before-image "
                "to a media failure and can no longer abort")
        with db.tracer.span("recovery.abort", stats=db.stats, txn=txn_id):
            if txn.is_update_transaction:
                db._ensure_bot(txn_id)
                if db.config.record_logging:
                    self._abort_record_mode(txn)
                else:
                    self._abort_page_mode(txn)
                db.undo_log.append(AbortRecord(txn_id=txn_id))
                db.undo_log.force()
            db.locks.release_all(txn_id)
            db.txns.finish(txn_id, TxnState.ABORTED)
        db._forget(txn_id)
        db.counters.transactions_aborted += 1

    def _parity_undo_for(self, txn_id: int) -> dict:
        """Rewind the transaction's unlogged stolen pages via the twins."""
        db = self.db
        if db.rda is None:
            return {}
        buffered = {}
        for group in db.rda.dirty_set.groups_of(txn_id):
            entry = db.rda.dirty_set.entry(group)
            known = db._last_stolen.get((txn_id, entry.page_id))
            if known is not None:
                buffered[entry.page_id] = known
        return db.rda.abort_txn(txn_id, buffered=buffered)

    def _abort_page_mode(self, txn) -> None:
        db = self.db
        txn_id = txn.txn_id
        restored = self._parity_undo_for(txn_id)

        logged_pages = sorted(page for (t, page) in db._logged_stolen
                              if t == txn_id and page not in restored)
        if logged_pages:
            chain = db.undo_log.records_of(txn_id)
            db.undo_log.charge_read(chain)
            images = {r.page_id: r.image for r in chain
                      if isinstance(r, PageBeforeImage)}
            for page in logged_pages:
                if page not in images:
                    raise RecoveryError(
                        f"no before-image for stolen page {page} of "
                        f"transaction {txn_id}")
                db._write_committed(page, images[page],
                                    old_data=db._last_stolen.get((txn_id, page)))

        for page in sorted(txn.pages_written):
            if page not in db.buffer:
                continue
            keep_residue = page in db._residue
            before = db._before_images.get((txn_id, page))
            db.buffer.invalidate(page)
            if keep_residue and before is not None:
                # the frame held committed-but-unflushed data under the
                # transaction's changes; disk lacks it, so rebuild the
                # frame from the captured pre-transaction image
                db.buffer.put_page(page, before, None)
                db._residue.add(page)

    def _abort_record_mode(self, txn) -> None:
        db = self.db
        txn_id = txn.txn_id
        restored = self._parity_undo_for(txn_id)
        for page in restored:
            if page in db.buffer:
                # single-modifier invariant: only this transaction's
                # changes were buffered for an unlogged stolen page
                db.buffer.invalidate(page)

        chain = db.undo_log.records_of(txn_id)
        db.undo_log.charge_read(chain)
        logged = [r for r in reversed(chain)
                  if isinstance(r, (RecordBeforeEntry, PageBeforeImage))]
        pending = list(db._pending_undo.get(txn_id, ()))
        ordered = logged + pending      # forward order; pending is newest

        touched = {}
        for entry in reversed(ordered):
            page = entry.page_id
            if isinstance(entry, PageBeforeImage):
                touched[page] = entry.image
                continue
            payload = touched.get(page)
            if payload is None:
                payload = db.buffer.get_page(page)
            touched[page] = _apply_record_image(payload, entry.slot, entry.image)

        # The abort record below asserts "undo is durable", so the
        # corrected pages must reach disk now even under ¬FORCE —
        # otherwise a crash after the abort would resurrect the aborted
        # values (aborted transactions are excluded from restart undo).
        for page in sorted(touched):
            db.buffer.invalidate(page)
            db.buffer.put_page(page, touched[page], None)
            db.buffer.flush_page(page)

    # ==================== crash recovery ====================

    def crash_recover(self, fault_hook=None) -> dict:
        """Restart after :meth:`Database.crash`.

        Returns statistics: winners, losers, pages redone/undone, and
        the page transfers the restart consumed.

        ``fault_hook``, if given, is called before every recovery write
        with a progress label; raising from it models a crash *during*
        recovery (the tests drive this to prove restart idempotence —
        recovery applies absolute images and re-derives its work list
        from durable state, so being interrupted anywhere is safe).
        """
        db = self.db
        fault = fault_hook if fault_hook is not None else (lambda label: None)
        before = db.stats.snapshot()
        restart = db.tracer.span("recovery.restart", stats=db.stats)
        restart.__enter__()
        try:
            with db.tracer.span("recovery.phase", stats=db.stats,
                                phase="analysis") as span:
                db.undo_log.after_crash()
                if db.redo_log is not db.undo_log:
                    db.redo_log.after_crash()

                winners = {r.txn_id for r in db.redo_log.scan(CommitRecord)}
                aborted = {r.txn_id for r in db.undo_log.scan(AbortRecord)}
                bots = {r.txn_id for r in db.undo_log.scan(BOTRecord)}
                losers = set(bots) - winners - aborted
                span.set(winners=len(winners), losers=len(losers))

            # 0. media scan: repair latent sector errors (torn or corrupt
            # sectors left by the crash) before anything reads them
            sectors_repaired = self._media_scan(winners, fault)

            # 0b. RAID write-hole resync (¬RDA only): a crash between a
            # small-write's data and parity transfers leaves the parity
            # stale; recovery's own small writes assume it is current,
            # so recompute it first.  (The twin array needs no resync:
            # its interrupted writes are resolved through the headers
            # by parity undo below.)
            parity_resynced = self._parity_resync(fault) if db.rda is None \
                else 0

            # 1. parity undo of unlogged stolen pages (must precede log writes)
            parity_undone = 0
            if db.rda is not None:
                with db.tracer.span("recovery.phase", stats=db.stats,
                                    phase="parity_undo") as span:
                    for entry in db.rda.crash_scan(winners):
                        losers.add(entry.txn_id)
                        fault(f"parity-undo group {entry.group}")
                        db.rda.undo_group(entry.group)
                        parity_undone += 1
                    span.set(pages=parity_undone)

            cache: dict = {}

            def page_base(page: int) -> bytes:
                if page not in cache:
                    cache[page] = db.array.read_page(page)
                return cache[page]

            # 2. REDO committed work since the last checkpoint (¬FORCE only)
            redone = 0
            if not db.config.force:
                with db.tracer.span("recovery.phase", stats=db.stats,
                                    phase="redo") as span:
                    start = 0
                    for record in db.redo_log.scan(CheckpointRecord):
                        start = record.lsn
                    replay = [r for r in db.redo_log.records() if r.lsn > start]
                    db.redo_log.charge_read(replay)
                    for record in replay:
                        if record.txn_id not in winners:
                            continue
                        if isinstance(record, PageAfterImage):
                            cache[record.page_id] = record.image
                            redone += 1
                        elif isinstance(record, RecordAfterEntry):
                            cache[record.page_id] = _apply_record_image(
                                page_base(record.page_id), record.slot,
                                record.image)
                            redone += 1
                    span.set(applied=redone)

            # 3. UNDO losers from the log, backward in global LSN order
            with db.tracer.span("recovery.phase", stats=db.stats,
                                phase="undo") as span:
                undo_records = [
                    r for r in db.undo_log.records()
                    if r.txn_id in losers
                    and isinstance(r, (PageBeforeImage, RecordBeforeEntry))
                ]
                db.undo_log.charge_read(undo_records)
                undone = 0
                for record in sorted(undo_records, key=lambda r: r.lsn,
                                     reverse=True):
                    if isinstance(record, PageBeforeImage):
                        cache[record.page_id] = record.image
                    else:
                        cache[record.page_id] = _apply_record_image(
                            page_base(record.page_id), record.slot,
                            record.image)
                    undone += 1
                span.set(applied=undone)

            with db.tracer.span("recovery.phase", stats=db.stats,
                                phase="restore") as span:
                for page in sorted(cache):
                    fault(f"restore page {page}")
                    db._write_committed(page, cache[page])

                fault("abort records")
                for txn_id in sorted(losers):
                    db.undo_log.append(AbortRecord(txn_id=txn_id))
                db.undo_log.force()
                span.set(pages=len(cache))
        finally:
            restart.__exit__(None, None, None)

        delta = db.stats.snapshot() - before
        return {
            "winners": sorted(winners),
            "losers": sorted(losers),
            "sectors_repaired": sectors_repaired,
            "parity_resynced": parity_resynced,
            "parity_undone_pages": parity_undone,
            "redo_applied": redone,
            "log_undo_applied": undone,
            "page_transfers": delta.total,
        }

    # ==================== media scan (restart phase 0) ====================

    def _media_scan(self, winners: set, fault) -> int:
        """Repair latent sector errors surfaced by the restart scan.

        A crash can leave torn sectors (partial writes) whose checksums
        no longer match; later phases read those very sectors, so they
        are repaired first from the surviving redundancy.  Clean
        restarts skip the phase entirely (no span, no fault-hook calls).
        """
        db = self.db
        bad = [(disk.disk_id, slot)
               for disk in db.array.disks if not disk.failed
               for slot in disk.bad_sectors()]
        if not bad:
            return 0
        # data slots first: parity recompute below reads the data pages
        bad.sort(key=lambda item: (
            db.array.geometry.page_at(PhysAddr(*item)) is None, item))
        with db.tracer.span("recovery.phase", stats=db.stats,
                            phase="media_scan") as span:
            for disk_id, slot in bad:
                fault(f"media repair disk {disk_id} slot {slot}")
                self._repair_sector(disk_id, slot, winners)
            span.set(sectors=len(bad))
        return len(bad)

    def _parity_resync(self, fault) -> int:
        """Recompute stale single-parity groups after a crash.

        Detection uses uncounted peeks (the restart scrub); the repair
        writes are counted.  Clean restarts skip the phase entirely.
        """
        db = self.db
        stale = db.array.scrub()
        if not stale:
            return 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            phase="parity_resync") as span:
            for group in stale:
                fault(f"parity resync group {group}")
                data = [db.array.read_page(p)
                        for p in db.array.geometry.group_pages(group)]
                (addr,) = db.array.geometry.parity_addresses(group)
                db.array.disks[addr.disk].write(addr.slot,
                                                compute_parity(data))
            span.set(groups=len(stale))
        return len(stale)

    def _repair_sector(self, disk_id: int, slot: int, winners: set) -> None:
        """Rebuild one unreadable sector from the group's redundancy."""
        db = self.db
        geometry = db.array.geometry
        page = geometry.page_at(PhysAddr(disk_id, slot))
        if page is not None:
            # data sector: mates + current parity reconstruct it; for a
            # torn in-flight write the selected twin decides whether the
            # write completes or rolls back, matching what parity undo /
            # log undo will conclude from the same headers
            db.array.repair_page(page)
            return

        group = slot
        data = [db.array.read_page(p) for p in geometry.group_pages(group)]
        addrs = geometry.parity_addresses(group)
        if not hasattr(db.array, "write_twin"):
            if len(addrs) > 1 and addrs[1].disk == disk_id:
                from ..storage.gf256 import q_parity
                db.array.disks[disk_id].write(slot, q_parity(data))
            else:
                db.array.disks[disk_id].write(slot, compute_parity(data))
            return

        which = next(i for i, a in enumerate(addrs) if a.disk == disk_id)
        other_addr = addrs[1 - which]
        other = db.array.disks[other_addr.disk].read_header(other_addr.slot)
        if (other.state is TwinState.WORKING and other.txn_id != NO_TXN
                and other.txn_id not in winners):
            # the damaged twin was the committed parity of a dirty group:
            # it is the loser's only before-image, and the data already
            # holds the uncommitted value — detectable but not repairable
            raise UnrecoverableDataError(
                f"group {group}: committed parity twin lost to a media "
                f"error while transaction {other.txn_id} holds an "
                "unlogged stolen page in the group")
        header = db.array.disks[disk_id].read_header(slot)
        db.array.write_twin(group, which, compute_parity(data), header)

    # ==================== media recovery ====================

    def media_recover(self, disk_id: int, on_lost_undo: str = "raise"):
        """Rebuild a failed disk from the surviving redundancy.

        With RDA, the live Dirty_Set steers the twin rebuild; if the
        committed twin of a dirty group was lost and ``on_lost_undo`` is
        ``"adopt"``, the owning transactions are pinned ``must_commit``
        (their stolen pages can no longer be rolled back).
        """
        db = self.db
        with db.tracer.span("recovery.media", stats=db.stats, disk=disk_id):
            if db.rda is not None:
                report, must_commit = db.rda.rebuild_disk(
                    disk_id, on_lost_undo=on_lost_undo)
                for txn_id in must_commit:
                    db.txns.get(txn_id).must_commit = True
                return report
            return db.array.rebuild_disk(disk_id)
