"""Vectorized page kernels: the byte-level substrate of every parity op.

Everything the paper costs in page transfers — small-write parity
updates, the twin-parity undo identity ``D_old = P_w ⊕ P_c ⊕ D_new``,
crash/media rebuilds, RAID-6 P+Q syndromes — bottoms out in two
primitives over :data:`~repro.storage.page.PAGE_SIZE`-byte payloads:

* whole-page XOR (GF(2) addition), and
* GF(256) scalar-times-page multiplication (Reed-Solomon weighting).

This module provides both in three interchangeable **tiers**, selected
once at import time and overridable per call site for tests and
benchmarks:

``numpy``
    Pages viewed as ``uint8`` vectors; XOR is ``np.bitwise_xor`` and
    GF(256) multiply is a row of a precomputed 256×256 product table
    indexed by the page bytes.  Registered only when numpy imports.

``stdlib``
    No third-party code.  Whole-page XOR runs as one arbitrary-precision
    integer XOR (``int.from_bytes(a) ^ int.from_bytes(b)``); GF(256)
    scalar-times-page runs as ``page.translate(table)`` against one of
    256 precomputed translation tables.  Both execute in C inside the
    interpreter, tens of times faster than a Python byte loop.

``reference``
    The original pure-Python byte loops, kept as the executable
    specification.  The other tiers are property-tested against it
    byte-for-byte (``tests/storage/test_kernels.py``).

Tier selection: the best available tier wins (numpy > stdlib), unless
the environment variable :data:`TIER_ENV_VAR` (``REPRO_KERNEL_TIER``)
names one of ``numpy``/``stdlib``/``reference``/``auto``, or the
program calls :func:`set_kernel` / :func:`use_kernel`.  Setting
``REPRO_NO_NUMPY=1`` hides numpy even when importable — CI uses it to
exercise the fallback path.

Each tier exposes the same six static operations; callers validate
page lengths (hoisted out of the hot loops) and the kernels assume
well-formed input:

* ``xor(a, b)`` — two-operand XOR (truncates to the shorter operand,
  matching the historical ``zip`` semantics of ``gf256.page_xor``);
* ``xor_blocks(a, b)`` — equal-length multi-page blobs XORed in one
  call (the commit-window batching primitive: K pages' deltas or
  parity twins per invocation instead of K kernel calls);
* ``xor_accumulate(pages, size)`` — one batched k-page XOR reduction
  (the rebuild/degraded-read hot path); zero pages → the zero page;
* ``xor_inplace(accumulator, page)`` — XOR into a ``bytearray``;
* ``gf_scale(coefficient, page)`` — GF(256) scalar × page;
* ``gf_scale_accumulate(pairs, size)`` — batched ``Σ c_i · D_i``
  (the Q-syndrome / two-erasure hot path).

``xor_blocks`` accepts any buffer type (``bytes``, ``bytearray``,
``memoryview``) so pooled slabs from :mod:`repro.storage.pagebuf` feed
it without copies; it always returns ``bytes``.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

TIER_ENV_VAR = "REPRO_KERNEL_TIER"
"""Environment variable naming the tier to activate at import time."""

NO_NUMPY_ENV_VAR = "REPRO_NO_NUMPY"
"""Set to ``1`` to pretend numpy is not installed (CI fallback leg)."""


# -- GF(256) product tables ------------------------------------------------------------
#
# Built locally (mirroring repro.storage.gf256, which delegates its page
# operations here and therefore cannot be imported at module load).
# The field is GF(256) mod x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator 2.

def _build_mul_tables() -> tuple:
    """All 256 GF(256) scalar-multiplication tables.

    ``tables[c][x] == c · x`` in the field; each table is a 256-byte
    ``bytes`` object usable directly with ``bytes.translate``.
    """
    poly = 0x11D
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & 0x100:
            value ^= poly
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def mul(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return exp[log[a] + log[b]]

    return tuple(bytes(mul(c, x) for x in range(256)) for c in range(256))


MUL_TABLES = _build_mul_tables()
"""``MUL_TABLES[c]`` is the ``bytes.translate`` table for GF(256) ·c."""

_EXPANDED = MUL_TABLES[2]  # sanity anchor: 2·0x80 must reduce mod the polynomial
assert _EXPANDED[0x80] == 0x1D, "GF(256) table built with the wrong polynomial"
del _EXPANDED


# -- reference tier --------------------------------------------------------------------


class ReferenceKernel:
    """The original pure-Python byte loops — the executable spec."""

    name = "reference"

    @staticmethod
    def xor(a: bytes, b: bytes) -> bytes:
        return bytes(x ^ y for x, y in zip(a, b))

    @staticmethod
    def xor_blocks(a, b) -> bytes:
        return bytes(x ^ y for x, y in zip(a, b))

    @staticmethod
    def xor_accumulate(pages, size: int) -> bytes:
        out = bytearray(size)
        for page in pages:
            for i, byte in enumerate(page):
                out[i] ^= byte
        return bytes(out)

    @staticmethod
    def xor_inplace(accumulator: bytearray, page: bytes) -> None:
        for i, byte in enumerate(page):
            accumulator[i] ^= byte

    @staticmethod
    def gf_scale(coefficient: int, page: bytes) -> bytes:
        if coefficient == 0:
            return bytes(len(page))
        if coefficient == 1:
            return bytes(page)
        table = MUL_TABLES[coefficient]
        return bytes(table[b] for b in page)

    @staticmethod
    def gf_scale_accumulate(pairs, size: int) -> bytes:
        out = bytes(size)
        for coefficient, page in pairs:
            out = ReferenceKernel.xor(out, ReferenceKernel.gf_scale(coefficient, page))
        return out


# -- stdlib tier -----------------------------------------------------------------------


class StdlibKernel:
    """C-speed primitives from the standard library alone.

    Whole-page XOR as one big-int XOR and GF(256) scaling as
    ``bytes.translate`` both run inside the interpreter's C core — no
    per-byte Python bytecode.
    """

    name = "stdlib"

    @staticmethod
    def xor(a: bytes, b: bytes) -> bytes:
        n = len(a)
        if len(b) != n:
            n = min(n, len(b))
            a, b = a[:n], b[:n]
        return (int.from_bytes(a, "little")
                ^ int.from_bytes(b, "little")).to_bytes(n, "little")

    @staticmethod
    def xor_blocks(a, b) -> bytes:
        return (int.from_bytes(a, "little")
                ^ int.from_bytes(b, "little")).to_bytes(len(a), "little")

    @staticmethod
    def xor_accumulate(pages, size: int) -> bytes:
        acc = 0
        for page in pages:
            acc ^= int.from_bytes(page, "little")
        return acc.to_bytes(size, "little")

    @staticmethod
    def xor_inplace(accumulator: bytearray, page: bytes) -> None:
        accumulator[:] = (
            int.from_bytes(accumulator, "little") ^ int.from_bytes(page, "little")
        ).to_bytes(len(accumulator), "little")

    @staticmethod
    def gf_scale(coefficient: int, page: bytes) -> bytes:
        if coefficient == 0:
            return bytes(len(page))
        if coefficient == 1:
            return bytes(page)
        return page.translate(MUL_TABLES[coefficient])

    @staticmethod
    def gf_scale_accumulate(pairs, size: int) -> bytes:
        acc = 0
        for coefficient, page in pairs:
            if coefficient == 0:
                continue
            if coefficient == 1:
                acc ^= int.from_bytes(page, "little")
            else:
                acc ^= int.from_bytes(page.translate(MUL_TABLES[coefficient]),
                                      "little")
        return acc.to_bytes(size, "little")


# -- numpy tier ------------------------------------------------------------------------


def _make_numpy_kernel():
    """Build the numpy tier, or return None when numpy is unavailable."""
    if os.environ.get(NO_NUMPY_ENV_VAR, "").strip() in ("1", "true", "yes"):
        return None
    try:
        import numpy as np
    except ImportError:
        return None

    mul_matrix = np.frombuffer(b"".join(MUL_TABLES),
                               dtype=np.uint8).reshape(256, 256)

    class NumpyKernel:
        """Pages as ``uint8`` vectors; GF(256) via a 256×256 product table."""

        name = "numpy"

        @staticmethod
        def xor(a: bytes, b: bytes) -> bytes:
            n = min(len(a), len(b))
            va = np.frombuffer(a, dtype=np.uint8, count=n)
            vb = np.frombuffer(b, dtype=np.uint8, count=n)
            return np.bitwise_xor(va, vb).tobytes()

        @staticmethod
        def xor_blocks(a, b) -> bytes:
            va = np.frombuffer(a, dtype=np.uint8)
            vb = np.frombuffer(b, dtype=np.uint8)
            return np.bitwise_xor(va, vb).tobytes()

        @staticmethod
        def xor_accumulate(pages, size: int) -> bytes:
            pages = list(pages)
            if not pages:
                return bytes(size)
            stacked = np.frombuffer(b"".join(pages),
                                    dtype=np.uint8).reshape(len(pages), size)
            return np.bitwise_xor.reduce(stacked, axis=0).tobytes()

        @staticmethod
        def xor_inplace(accumulator: bytearray, page: bytes) -> None:
            acc = np.frombuffer(accumulator, dtype=np.uint8)
            acc ^= np.frombuffer(page, dtype=np.uint8, count=len(accumulator))

        @staticmethod
        def gf_scale(coefficient: int, page: bytes) -> bytes:
            if coefficient == 0:
                return bytes(len(page))
            if coefficient == 1:
                return bytes(page)
            view = np.frombuffer(page, dtype=np.uint8)
            return mul_matrix[coefficient][view].tobytes()

        @staticmethod
        def gf_scale_accumulate(pairs, size: int) -> bytes:
            pairs = list(pairs)
            if not pairs:
                return bytes(size)
            coefficients = np.fromiter((c for c, _ in pairs), dtype=np.uint8,
                                       count=len(pairs))
            stacked = np.frombuffer(b"".join(p for _, p in pairs),
                                    dtype=np.uint8).reshape(len(pairs), size)
            weighted = mul_matrix[coefficients[:, None], stacked]
            return np.bitwise_xor.reduce(weighted, axis=0).tobytes()

    return NumpyKernel


# -- registry and selection ------------------------------------------------------------

KERNELS = {
    ReferenceKernel.name: ReferenceKernel,
    StdlibKernel.name: StdlibKernel,
}

_numpy_kernel = _make_numpy_kernel()
if _numpy_kernel is not None:
    KERNELS[_numpy_kernel.name] = _numpy_kernel


def numpy_available() -> bool:
    """Whether the numpy tier is registered.

    The probe (import attempt + :data:`NO_NUMPY_ENV_VAR` check) runs
    exactly once, at module import; this answers from the registry and
    never re-imports, so tier selection — including every later
    :func:`set_kernel` call — is allocation-free.
    """
    return "numpy" in KERNELS


def available_tiers() -> tuple:
    """Registered tier names, fastest first."""
    order = ("numpy", "stdlib", "reference")
    return tuple(name for name in order if name in KERNELS)


def _select_default():
    """Apply the env-var override, else pick the fastest available tier."""
    requested = os.environ.get(TIER_ENV_VAR, "auto").strip().lower()
    if requested in ("", "auto"):
        return KERNELS[available_tiers()[0]]
    if requested in KERNELS:
        return KERNELS[requested]
    if requested == "numpy":
        warnings.warn(
            f"{TIER_ENV_VAR}=numpy but numpy is unavailable; "
            "falling back to the stdlib kernel tier",
            RuntimeWarning, stacklevel=2)
        return KERNELS["stdlib"]
    raise ValueError(
        f"{TIER_ENV_VAR}={requested!r} names no kernel tier; "
        f"choose from {('auto',) + tuple(sorted(KERNELS))}")


_active = _select_default()


def get_kernel():
    """The active kernel tier (class with the five static operations)."""
    return _active


def active_tier() -> str:
    """Name of the active tier."""
    return _active.name


def set_kernel(name: str) -> str:
    """Activate a tier by name; returns the previously active name.

    ``"auto"`` re-selects the fastest registered tier using the
    memoized import-time probe (see :func:`numpy_available`) — no
    import machinery runs.  This is the programmatic/config override
    of the import-time selection; tests and benchmarks prefer
    :func:`use_kernel`.
    """
    global _active
    if name == "auto":
        name = available_tiers()[0]
    elif name not in KERNELS:
        raise ValueError(
            f"unknown kernel tier {name!r}; available: {available_tiers()}")
    previous = _active.name
    _active = KERNELS[name]
    return previous


@contextmanager
def use_kernel(name: str):
    """Context manager pinning the active tier, restoring it on exit."""
    previous = set_kernel(name)
    try:
        yield KERNELS[name]
    finally:
        set_kernel(previous)
