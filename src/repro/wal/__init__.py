"""Write-ahead logging: typed records and the duplexed log manager."""

from .group_commit import GroupCommitCoordinator, GroupCommitLog
from .log import DEFAULT_LOG_PAGE_SIZE, LogDevice, LogManager
from .records import (AbortRecord, BOTRecord, CheckpointRecord, CommitRecord,
                      LogRecord, NULL_LSN, PageAfterImage, PageBeforeImage,
                      PageRedoEntry, RecordAfterEntry, RecordBeforeEntry,
                      RecordRedoEntry, RecordType, deserialize)

__all__ = [
    "DEFAULT_LOG_PAGE_SIZE",
    "GroupCommitCoordinator",
    "GroupCommitLog",
    "LogDevice",
    "LogManager",
    "AbortRecord",
    "BOTRecord",
    "CheckpointRecord",
    "CommitRecord",
    "LogRecord",
    "NULL_LSN",
    "PageAfterImage",
    "PageBeforeImage",
    "PageRedoEntry",
    "RecordAfterEntry",
    "RecordBeforeEntry",
    "RecordRedoEntry",
    "RecordType",
    "deserialize",
]
