"""Page-transfer accounting.

The analytical model of the paper (Section 5) measures every cost in
*page transfers*.  :class:`IOStats` counts exactly those: one unit per
page read from or written to a disk.  The counters can be scoped with
:meth:`IOStats.window` to measure a single operation, which is how the
tests verify the per-operation costs the model assumes (e.g. a small
array write = 4 transfers, 3 when the old data is already buffered,
and ``3 + 2`` when both parity twins of a dirty group must be updated).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TransferCounts:
    """Immutable snapshot of read/write counters."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total page transfers (reads + writes)."""
        return self.reads + self.writes

    def __sub__(self, other: "TransferCounts") -> "TransferCounts":
        return TransferCounts(self.reads - other.reads, self.writes - other.writes)


@dataclass
class IOStats:
    """Running totals of page transfers, overall and per disk.

    Attributes:
        reads: total pages read across all disks.
        writes: total pages written across all disks.
        per_disk_reads: read counter keyed by disk id.
        per_disk_writes: write counter keyed by disk id.
    """

    reads: int = 0
    writes: int = 0
    per_disk_reads: dict = field(default_factory=dict)
    per_disk_writes: dict = field(default_factory=dict)

    def record_read(self, disk_id: int, pages: int = 1) -> None:
        """Count ``pages`` page reads on ``disk_id``."""
        self.reads += pages
        self.per_disk_reads[disk_id] = self.per_disk_reads.get(disk_id, 0) + pages

    def record_write(self, disk_id: int, pages: int = 1) -> None:
        """Count ``pages`` page writes on ``disk_id``."""
        self.writes += pages
        self.per_disk_writes[disk_id] = self.per_disk_writes.get(disk_id, 0) + pages

    @property
    def total(self) -> int:
        """Total page transfers so far."""
        return self.reads + self.writes

    @property
    def log_transfers(self) -> int:
        """Transfers on log devices (negative disk ids — the
        :class:`~repro.wal.log.LogManager` convention), the quantity
        group commit amortizes."""
        return (sum(count for disk_id, count in self.per_disk_reads.items()
                    if disk_id < 0)
                + sum(count for disk_id, count in self.per_disk_writes.items()
                      if disk_id < 0))

    def snapshot(self) -> TransferCounts:
        """Capture current totals for later differencing."""
        return TransferCounts(self.reads, self.writes)

    def reset(self) -> None:
        """Zero every counter."""
        self.reads = 0
        self.writes = 0
        self.per_disk_reads.clear()
        self.per_disk_writes.clear()

    @contextmanager
    def window(self):
        """Context manager yielding a :class:`TransferCounts` that is
        filled in with the transfers performed inside the ``with`` block.

        Example:
            >>> stats = IOStats()
            >>> with stats.window() as w:
            ...     stats.record_read(0)
            ...     stats.record_write(1)
            >>> (w.reads, w.writes, w.total)
            (1, 1, 2)
        """
        before = self.snapshot()
        result = TransferCounts()
        try:
            yield result
        finally:
            # TransferCounts is frozen; the window object is filled in
            # exactly once, here, after the measured block has run
            delta = self.snapshot() - before
            object.__setattr__(result, "reads", delta.reads)
            object.__setattr__(result, "writes", delta.writes)

    def busiest_disk(self) -> int | None:
        """Disk id with the most transfers, or None if no I/O happened.

        Useful for checking that rotated parity actually spreads the
        parity-update load (versus a dedicated parity disk hot spot).
        """
        totals: dict = {}
        for disk_id, count in self.per_disk_reads.items():
            totals[disk_id] = totals.get(disk_id, 0) + count
        for disk_id, count in self.per_disk_writes.items():
            totals[disk_id] = totals.get(disk_id, 0) + count
        if not totals:
            return None
        return max(totals, key=lambda d: totals[d])

    def imbalance(self) -> float:
        """Max/mean ratio of per-disk transfer counts (1.0 = perfectly even)."""
        totals: dict = {}
        for disk_id, count in self.per_disk_reads.items():
            totals[disk_id] = totals.get(disk_id, 0) + count
        for disk_id, count in self.per_disk_writes.items():
            totals[disk_id] = totals.get(disk_id, 0) + count
        if not totals:
            return 1.0
        values = list(totals.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean
