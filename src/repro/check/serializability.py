"""Conflict-serializability and strictness analysis of a history.

Classical scheduler theory (Bernstein/Hadzilacos/Goodman): a history
is *conflict-serializable* iff its precedence graph over committed
transactions is acyclic; it is *recoverable* (RC) when every reader
commits after the writer it read from, *avoids cascading aborts* (ACA)
when transactions only read committed data, and *strict* (ST) when no
resource written by T is read or overwritten before T ends.  Strict
two-phase locking — what :mod:`repro.txn.locks` implements — must
yield strict, serializable histories; this module is the oracle that
checks it did.

Resources are ``(page, slot)`` pairs; page-mode operations use
``slot=None``, so page and record locking share one analysis.
Aborted transactions' writes are treated as undone: they are removed
from the version stack, and reads-from edges never point at them
(a read that *did* observe an aborted write is reported as a dirty
read anomaly instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .history import History

Resource = Tuple[Optional[int], Optional[int]]


@dataclass
class SerializabilityReport:
    """Verdict of :func:`analyze` over one history."""

    serializable: bool
    cycle: Optional[List[int]]       # a precedence cycle, if any
    serial_order: Optional[List[int]]  # a witness order when serializable
    recoverable: bool
    avoids_cascading_aborts: bool
    strict: bool
    anomalies: List[str] = field(default_factory=list)
    edges: Set[Tuple[int, int]] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        return self.serializable and self.strict and not self.anomalies

    def to_dict(self) -> dict:
        return {
            "serializable": self.serializable,
            "cycle": self.cycle,
            "serial_order": self.serial_order,
            "recoverable": self.recoverable,
            "avoids_cascading_aborts": self.avoids_cascading_aborts,
            "strict": self.strict,
            "anomalies": sorted(self.anomalies),
            "edges": sorted(list(edge) for edge in self.edges),
        }


def analyze(history: History) -> SerializabilityReport:
    """Classify ``history``; see the module docstring for definitions."""
    committed = history.committed_txns()
    aborted = set(history.aborted_txns())
    end_seq: Dict[int, int] = {}
    commit_seq: Dict[int, int] = {}
    begun: Set[int] = set()
    for event in history:
        if event.op == "begin":
            begun.add(event.txn)
        elif event.op == "commit":
            commit_seq[event.txn] = event.seq
            end_seq[event.txn] = event.seq
        elif event.op == "abort":
            end_seq[event.txn] = event.seq
        elif event.op == "crash":
            # A crash ends every in-flight transaction; restart undoes
            # its effects, so losers are aborts for analysis purposes.
            for txn in begun:
                if txn not in end_seq:
                    end_seq[txn] = event.seq
                    aborted.add(txn)

    # Live write stacks per resource: (txn, seq), newest last.  Abort
    # pops the aborting transaction's entries (its writes are undone).
    writes: Dict[Resource, List[Tuple[int, int]]] = {}
    # Full op log per resource for conflict edges: (seq, txn, kind).
    ops: Dict[Resource, List[Tuple[int, int, str]]] = {}
    # reads-from: (reader, read_seq, writer, write_seq)
    reads_from: List[Tuple[int, int, int, int]] = []
    anomalies: List[str] = []

    for event in history:
        if event.op in ("read", "write"):
            res = (event.page, event.slot)
            ops.setdefault(res, []).append((event.seq, event.txn, event.op))
            if event.op == "write":
                writes.setdefault(res, []).append((event.txn, event.seq))
            else:
                stack = writes.get(res, [])
                for writer, wseq in reversed(stack):
                    if writer != event.txn:
                        reads_from.append((event.txn, event.seq, writer, wseq))
                        break
        elif event.op == "abort":
            for stack in writes.values():
                stack[:] = [w for w in stack if w[0] != event.txn]
        elif event.op == "crash":
            # Restart recovery undoes every loser's writes.
            for stack in writes.values():
                stack[:] = [w for w in stack
                            if commit_seq.get(w[0], event.seq + 1)
                            < event.seq]

    # -- precedence graph over committed transactions ------------------------
    edges: Set[Tuple[int, int]] = set()
    for res, oplist in ops.items():
        for i, (seq_i, txn_i, kind_i) in enumerate(oplist):
            if txn_i not in committed:
                continue
            for seq_j, txn_j, kind_j in oplist[i + 1:]:
                if txn_j == txn_i or txn_j not in committed:
                    continue
                if kind_i == "read" and kind_j == "read":
                    continue
                edges.add((txn_i, txn_j))

    cycle = _find_cycle(committed, edges)
    serial_order = None if cycle else _topo_order(committed, edges)

    # -- recoverability ladder ----------------------------------------------
    recoverable = True
    aca = True
    strict = True
    for reader, rseq, writer, wseq in reads_from:
        if writer in aborted and reader in committed:
            anomalies.append(
                f"dirty read: T{reader} read (seq {rseq}) from aborted "
                f"T{writer}")
        writer_commit = commit_seq.get(writer)
        if reader in committed:
            reader_commit = commit_seq[reader]
            if writer_commit is None or writer_commit > reader_commit:
                recoverable = False
        if writer_commit is None or rseq < writer_commit:
            aca = False
            strict = False
    # Strictness also forbids overwriting uncommitted data (write-write).
    for res, oplist in ops.items():
        last_write: Optional[Tuple[int, int]] = None  # (txn, seq)
        for seq, txn, kind in oplist:
            if kind != "write":
                continue
            if last_write is not None and last_write[0] != txn:
                prev_txn, _prev_seq = last_write
                prev_end = end_seq.get(prev_txn)
                if prev_end is None or seq < prev_end:
                    strict = False
            last_write = (txn, seq)

    if cycle is not None:
        anomalies.append(
            "precedence cycle: " + " -> ".join(f"T{t}" for t in cycle))
    return SerializabilityReport(
        serializable=cycle is None,
        cycle=cycle,
        serial_order=serial_order,
        recoverable=recoverable,
        avoids_cascading_aborts=aca,
        strict=strict,
        anomalies=anomalies,
        edges=edges,
    )


def _find_cycle(nodes: Set[int], edges: Set[Tuple[int, int]]):
    """Iterative three-color DFS; returns one cycle as a node list."""
    adjacency: Dict[int, List[int]] = {node: [] for node in nodes}
    for src, dst in edges:
        adjacency[src].append(dst)
    for neighbors in adjacency.values():
        neighbors.sort()
    color = {node: 0 for node in nodes}  # 0 white, 1 gray, 2 black
    for root in sorted(nodes):
        if color[root] != 0:
            continue
        stack = [(root, iter(adjacency[root]))]
        color[root] = 1
        path = [root]
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for nxt in neighbors:
                if color[nxt] == 1:
                    return path[path.index(nxt):] + [nxt]
                if color[nxt] == 0:
                    color[nxt] = 1
                    path.append(nxt)
                    stack.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
                stack.pop()
    return None


def _topo_order(nodes: Set[int], edges: Set[Tuple[int, int]]):
    """Kahn topological order (deterministic: smallest txn id first)."""
    indegree = {node: 0 for node in nodes}
    adjacency: Dict[int, List[int]] = {node: [] for node in nodes}
    for src, dst in edges:
        adjacency[src].append(dst)
        indegree[dst] += 1
    ready = sorted(node for node, deg in indegree.items() if deg == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in sorted(adjacency[node]):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
        ready.sort()
    return order if len(order) == len(nodes) else None
