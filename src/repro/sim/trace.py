"""Workload traces: record a run's transaction scripts, replay them later.

Seeds make a :class:`~repro.sim.simulator.Simulator` reproducible within
one library version; a *trace* makes the workload portable across
versions and machines — the JSON-lines file pins the exact accesses, so
a regression can be replayed forever even if the generator's RNG
consumption changes.

Format: one JSON object per line —
``{"accesses": [[page, update], ...], "update": bool, "abort": bool}``.
"""

from __future__ import annotations

import json

from ..errors import ModelError
from .simulator import Simulator
from .workload import Access, TransactionScript


def script_to_json(script: TransactionScript) -> str:
    """One trace line for a script."""
    return json.dumps({
        "accesses": [[a.page, a.update] for a in script.accesses],
        "update": script.is_update,
        "abort": script.wants_abort,
    }, separators=(",", ":"))


def script_from_json(line: str) -> TransactionScript:
    """Parse one trace line.

    Raises:
        ModelError: malformed line.
    """
    try:
        doc = json.loads(line)
        accesses = [Access(page=int(p), update=bool(u))
                    for p, u in doc["accesses"]]
        return TransactionScript(accesses=accesses,
                                 is_update=bool(doc["update"]),
                                 wants_abort=bool(doc["abort"]))
    except (ValueError, KeyError, TypeError) as error:
        raise ModelError(f"malformed trace line: {error}") from None


class TracingSimulator(Simulator):
    """A simulator that records every script it starts."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trace: list = []

    def _fill_slots(self, budget: int) -> None:
        before = len(self._live)
        super()._fill_slots(budget)
        for live in self._live[before:]:
            self.trace.append(live.script)

    def dump_trace(self, path) -> int:
        """Write the recorded scripts as JSON lines; returns the count."""
        with open(path, "w", encoding="ascii") as handle:
            for script in self.trace:
                handle.write(script_to_json(script) + "\n")
        return len(self.trace)


class ReplaySimulator(Simulator):
    """A simulator that draws its scripts from a recorded trace."""

    def __init__(self, db, spec, scripts) -> None:
        super().__init__(db, spec, seed=0)
        self._scripts = list(scripts)
        self._cursor = 0

    @classmethod
    def from_file(cls, db, spec, path) -> "ReplaySimulator":
        """Load a trace file recorded by :class:`TracingSimulator`."""
        with open(path, "r", encoding="ascii") as handle:
            scripts = [script_from_json(line)
                       for line in handle if line.strip()]
        return cls(db, spec, scripts)

    @property
    def remaining(self) -> int:
        """Scripts not yet started."""
        return len(self._scripts) - self._cursor

    def _fill_slots(self, budget: int) -> None:
        while (len(self._live) < self.spec.concurrency
               and self._started < budget
               and self._cursor < len(self._scripts)):
            script = self._scripts[self._cursor]
            self._cursor += 1
            txn_id = self.db.begin()
            from .simulator import _LiveTxn
            self._live.append(_LiveTxn(txn_id=txn_id, script=script))
            self._started += 1
