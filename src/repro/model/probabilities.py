"""The model's probability terms (paper Sections 5.1-5.3 and Appendix).

Each function quotes the paper equation it implements; these are the
*legible* parts of the scanned text and are implemented verbatim.
"""

from __future__ import annotations

import math

from ..errors import ModelError


def logging_probability(K: float, S: int, N: int) -> float:
    """Eq. (5): the probability that a modified page must be UNDO-logged.

    ``K`` uncommitted pages are to be written back into ``S/N`` parity
    groups; one page per group can ride the parity twins, so with

        E[X] = (S/N) * (1 - (1 - N/S)^K)

    groups receiving at least one page,

        p_l = 1 - E[X] / K.

    ``K`` may be fractional (the model plugs in expected values).
    Returns 0 for K <= 0 (nothing pending means nothing to log) and is
    monotonically increasing in K.
    """
    if S < N or N < 1:
        raise ModelError("need S >= N >= 1")
    if K <= 0:
        return 0.0
    groups = S / N
    expected_direct = groups * (1.0 - (1.0 - N / S) ** K)
    p = 1.0 - expected_direct / K
    return min(1.0, max(0.0, p))


def replaced_page_modified(f_u: float, p_u: float, C: float) -> float:
    """Section 5.2.2: probability a replaced buffer page is modified.

        p_m = 1 - (1 - f_u * p_u)^(1 / (1 - C))

    A page's buffer life spans a geometric number of references with
    mean 1/(1-C); each reference modifies it with probability f_u*p_u.
    """
    if not 0.0 <= C < 1.0:
        raise ModelError("C must be in [0, 1)")
    return 1.0 - (1.0 - f_u * p_u) ** (1.0 / (1.0 - C))


def stolen_before_eot(B: int, C: float, s: int, P: int) -> float:
    """Section 5.2.2: probability a modified page is stolen before EOT.

        p_s = 1 - (1 - 1/(B - C*s))^((1-C) * s * (P-1))

    The other P-1 transactions issue (1-C)*s*(P-1) buffer-miss
    references while this transaction runs; each claims one of the
    B - C*s replaceable frames.
    """
    if B <= C * s:
        raise ModelError("B must exceed C*s")
    misses = (1.0 - C) * s * (P - 1)
    return 1.0 - (1.0 - 1.0 / (B - C * s)) ** misses


def shared_update_pages(B: int, C: float, s: int, p_u: float, P: int,
                        f_u: float) -> float:
    """Appendix: s_u, buffer pages updated by the concurrent update
    transactions under record locking.

    From the recurrence S(k) - S(k-1) = s*p_u*(1 - C*S(k-1)/B):

        s_u = B/C * (1 - (1 - C*s*p_u/B)^(P*f_u))

    (the paper's closed form; reduces to P*f_u*s*p_u as C -> 0).
    """
    if B <= 0:
        raise ModelError("B must be positive")
    exponent = P * f_u
    if C == 0.0:
        return min(float(B), s * p_u * exponent)
    value = (B / C) * (1.0 - (1.0 - C * s * p_u / B) ** exponent)
    return min(float(B), value)


def concurrent_modifier_fraction(B: int, C: float, s: int, p_u: float,
                                 P: int, f_u: float) -> float:
    """Section 5.3.2: p_i, the proportion of replaceable buffer pages
    modified by the concurrently executing transactions,

        p_i = s_u' / (B - C*s)

    where s_u' is the appendix formula evaluated with P-1 transactions
    (the pages *other* transactions share with an incoming one).
    """
    s_u = shared_update_pages(B, C, s, p_u, P - 1, f_u) if P > 1 else 0.0
    return min(1.0, s_u / (B - C * s))


def average_log_entry_length(d: int, r: int, s: int, e: int) -> float:
    """Section 5.3: L = (d*r + (s - d)*e) / s — the average record-log
    entry length given d long entries (r bytes) and s-d short ones."""
    if s < d:
        raise ModelError("s must be >= d")
    return (d * r + (s - d) * e) / s


def geometric_chain_term(p_l: float, exponent: float) -> float:
    """The paper's recurring ``p_l - p_l^x`` factor: the probability the
    log chain header must be written separately from the BOT record
    (some but not all of the transaction's pages needed logging)."""
    if p_l <= 0.0:
        return 0.0
    return max(0.0, p_l - p_l ** exponent)


def optimal_checkpoint_interval(c_E: float, c_c: float, T: float,
                                redo_cost_per_txn: float,
                                f_u: float) -> float:
    """Section 5.2.2, Eq. (1): the checkpoint interval minimizing lost
    throughput.

    With crash-recovery cost growing as (I / (2 c_E)) * f_u * redo and
    checkpoint overhead c_c * T / I, the optimum is

        I* = sqrt(2 * c_E * c_c * T / (f_u * redo_cost_per_txn)).
    """
    if min(c_E, c_c, T) <= 0 or f_u * redo_cost_per_txn <= 0:
        raise ModelError("optimal interval needs positive costs")
    return math.sqrt(2.0 * c_E * c_c * T / (f_u * redo_cost_per_txn))
