"""The differential worker tier: worker-process sharding must be
*byte-identical* to the in-process engine.

The worker facade replaces direct method calls with a pipe protocol,
one OS process per shard, and scatter-gather dispatch — three brand-new
machineries that must not change a single observable bit.  These tests
run the same seeded workload through :class:`ShardedDatabase` and
:class:`WorkerShardedDatabase` and compare the full
``SimulationReport`` JSON and the recorded operation history, across
all four RDA recovery classes, K ∈ {1, 2, 4}, with and without crash
cycles, plus the conformance harness end to end.
"""

import dataclasses
import json

import pytest

from repro.check import HistoryRecorder, run_conformance
from repro.db import (ShardedDatabase, WorkerShardedDatabase, make_sharded,
                      preset, verify_database)
from repro.sim import Simulator, WorkloadSpec

RDA_PRESETS = ("page-force-rda", "page-noforce-rda",
               "record-force-rda", "record-noforce-rda")

REDO_PRESETS = ("page-noforce-redo", "record-noforce-rda-redo")

SPEC = WorkloadSpec(concurrency=4, pages_per_txn=5,
                    update_txn_fraction=0.8, update_probability=0.9,
                    abort_probability=0.05, communality=0.6)

OVERRIDES = dict(group_size=5, num_groups=12, buffer_capacity=16)


def one_run(cls, name, shards, seed=11, crash_every=None, transactions=30,
            flush_horizon=4):
    recorder = HistoryRecorder()
    db = cls(preset(name, **OVERRIDES), shards=shards,
             flush_horizon=flush_horizon, history=recorder)
    try:
        simulator = Simulator(db, SPEC, seed=seed)
        if db.config.record_logging:
            simulator.seed_records()
        report = simulator.run(transactions, crash_every=crash_every)
        problems = verify_database(db)
        stats = db.statistics()
    finally:
        if hasattr(db, "close"):
            db.close()
    report_json = json.dumps(dataclasses.asdict(report), sort_keys=True)
    return report_json, recorder.history.to_json(), problems, stats


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("name", RDA_PRESETS)
def test_worker_mode_byte_identical_clean(name, shards):
    """Clean runs: report + history byte-identical for every RDA class."""
    inproc = one_run(ShardedDatabase, name, shards)
    worker = one_run(WorkerShardedDatabase, name, shards)
    assert inproc[0] == worker[0], "SimulationReport diverged"
    assert inproc[1] == worker[1], "recorded history diverged"
    assert inproc[2] == worker[2] == []


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("name", RDA_PRESETS)
def test_worker_mode_byte_identical_with_crashes(name, shards):
    """Crash cycles exercise the coordinator drain, the parallel
    restart fan-out, and the global-winner cross-check."""
    inproc = one_run(ShardedDatabase, name, shards, crash_every=7)
    worker = one_run(WorkerShardedDatabase, name, shards, crash_every=7)
    assert inproc[0] == worker[0], "SimulationReport diverged"
    assert inproc[1] == worker[1], "recorded history diverged"
    assert inproc[2] == worker[2] == []


@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("name", REDO_PRESETS)
def test_worker_mode_byte_identical_redo_class(name, shards):
    """The REDO-only class in worker mode: the write-behind gate, the
    chain-replay restart, and the hybrid's un-steal must all behave
    bit-for-bit like the in-process engine, clean and across crashes."""
    for crash_every in (None, 7):
        inproc = one_run(ShardedDatabase, name, shards,
                         crash_every=crash_every)
        worker = one_run(WorkerShardedDatabase, name, shards,
                         crash_every=crash_every)
        assert inproc[0] == worker[0], "SimulationReport diverged"
        assert inproc[1] == worker[1], "recorded history diverged"
        assert inproc[2] == worker[2] == []


def test_worker_conformance_hybrid_cell_clean():
    """The extended matrix's hybrid K=2 cell, worker-process edition."""
    inproc = run_conformance("record-noforce-rda-redo", transactions=20,
                             seed=3, crash_every=8, shards=2,
                             flush_horizon=4)
    worker = run_conformance("record-noforce-rda-redo", transactions=20,
                             seed=3, crash_every=8, shards=2,
                             flush_horizon=4, workers=True)
    assert worker.clean, [str(v) for v in worker.violations[:3]]
    assert worker.to_dict() == inproc.to_dict()


def test_worker_statistics_match_in_process():
    """The monitoring snapshot agrees key for key (modulo the worker
    extras, which only the worker facade reports)."""
    inproc = one_run(ShardedDatabase, "page-noforce-rda", 2, crash_every=9)
    worker = one_run(WorkerShardedDatabase, "page-noforce-rda", 2,
                     crash_every=9)
    for key, value in inproc[3].items():
        assert worker[3][key] == value, f"statistics[{key!r}] diverged"
    assert worker[3]["workers"] is True
    assert worker[3]["worker_deaths"] == 0


@pytest.mark.parametrize("name", RDA_PRESETS)
def test_worker_conformance_cell_clean(name):
    """`repro check --shards` equivalent: the conformance harness (lock
    oracle, differential mirror, invariant barriers, final-state sweep)
    judges worker mode clean, and produces the same verdict payload as
    the in-process cell."""
    inproc = run_conformance(name, transactions=20, seed=3, crash_every=8,
                             shards=2, flush_horizon=4)
    worker = run_conformance(name, transactions=20, seed=3, crash_every=8,
                             shards=2, flush_horizon=4, workers=True)
    assert worker.clean, [str(v) for v in worker.violations[:3]]
    assert worker.to_dict() == inproc.to_dict()


def test_make_sharded_selects_engine(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    config = preset("page-force-rda", **OVERRIDES)
    db = make_sharded(config, shards=2)
    assert type(db) is ShardedDatabase
    monkeypatch.setenv("REPRO_WORKERS", "on")
    db = make_sharded(config, shards=2)
    try:
        assert type(db) is WorkerShardedDatabase
    finally:
        db.close()
    db = make_sharded(config, shards=2, workers=False)
    assert type(db) is ShardedDatabase
