"""The database facade: configurations, slotted pages, heaps, recovery."""

from .archive import ArchiveCopy, ArchiveManager
from .btree import BTree, BTreeError
from .catalog import Catalog, CatalogError
from .config import (DBConfig, all_preset_names, extended_preset_names,
                     preset)
from .database import Database, LockWait, WriteCounters
from .heap import HeapFile
from .policy import RecoveryPolicy
from .recovery import RecoveryManager
from .sharded import ShardedDatabase, ShardScheduler, shard_config
from .slotted_page import PageFullError, SlottedPage
from .verify import verify_database
from .workers import (WorkerCrashed, WorkerShardedDatabase, make_sharded,
                      workers_enabled_by_env)

__all__ = [
    "ArchiveCopy",
    "ArchiveManager",
    "BTree",
    "BTreeError",
    "Catalog",
    "CatalogError",
    "DBConfig",
    "all_preset_names",
    "extended_preset_names",
    "preset",
    "Database",
    "LockWait",
    "WriteCounters",
    "HeapFile",
    "RecoveryPolicy",
    "RecoveryManager",
    "ShardedDatabase",
    "ShardScheduler",
    "shard_config",
    "PageFullError",
    "SlottedPage",
    "verify_database",
    "WorkerCrashed",
    "WorkerShardedDatabase",
    "make_sharded",
    "workers_enabled_by_env",
]
