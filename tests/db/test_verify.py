"""Tests for the whole-database consistency verifier."""

import pytest

from repro.db import Database, preset
from repro.db.verify import verify_database
from repro.storage import make_page
from repro.storage.page import ParityHeader, TwinState
from repro.wal.records import BOTRecord


def make_db(name="page-force-rda", **kw):
    defaults = dict(group_size=4, num_groups=8, buffer_capacity=6)
    defaults.update(kw)
    db = Database(preset(name, **defaults))
    if db.config.record_logging:
        db.format_record_pages(range(db.num_data_pages))
    return db


class TestCleanStates:
    @pytest.mark.parametrize("name", ["page-force-rda", "page-force-log",
                                      "page-noforce-rda", "record-force-rda",
                                      "record-noforce-log"])
    def test_fresh_database_clean(self, name):
        assert verify_database(make_db(name)) == []

    def test_clean_after_work(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        loser = db.begin()
        db.write_page(loser, 1, make_page(b"y"))
        db.abort(loser)
        assert verify_database(db) == []

    def test_clean_with_active_dirty_group(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.buffer.flush_pages_of(t)      # unlogged steal: group dirty
        assert verify_database(db) == []
        db.commit(t)
        assert verify_database(db) == []

    def test_clean_after_crash_recovery(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.buffer.flush_pages_of(t)
        db.crash()
        db.recover()
        assert verify_database(db) == []


class TestDetections:
    def test_detects_parity_damage(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        db.buffer.flush_all_dirty()
        addr = db.array.geometry.data_address(0)
        db.array.disks[addr.disk]._pages[addr.slot] = make_page(b"tampered")
        problems = verify_database(db)
        assert any("parity" in p for p in problems)

    def test_detects_orphan_working_twin(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.buffer.flush_pages_of(t)
        group = db.array.geometry.group_of(0)
        # simulate a lost Dirty_Set entry
        db.rda.dirty_set.clean(group)
        problems = verify_database(db)
        assert any("missing from the Dirty_Set" in p for p in problems)

    def test_detects_duplex_divergence(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        db.undo_log.damage_copy(0, 0)
        problems = verify_database(db)
        assert any("duplex" in p for p in problems)

    def test_detects_duplicate_bot(self):
        db = make_db()
        db.undo_log.append(BOTRecord(txn_id=77))
        db.undo_log.append(BOTRecord(txn_id=77))
        problems = verify_database(db)
        assert any("duplicate BOT" in p for p in problems)

    def test_detects_stale_modifier(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.txns.finish(t, __import__("repro.txn", fromlist=["TxnState"]).TxnState.COMMITTED)
        problems = verify_database(db)
        assert any("finished txn" in p for p in problems)

    def test_detects_garbage_record_page(self):
        db = make_db("record-force-rda")
        addr = db.array.geometry.data_address(0)
        blob = bytearray(512)
        blob[0:2] = (4).to_bytes(2, "little")     # 4 slots, bogus dir
        blob[4:8] = (60000).to_bytes(2, "little") + (500).to_bytes(2, "little")
        db.array.disks[addr.disk]._pages[addr.slot] = bytes(blob)
        problems = verify_database(db)
        assert any("unparseable" in p for p in problems)
