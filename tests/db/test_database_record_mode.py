"""Behavioral tests for the Database facade in record-logging mode."""

import pytest

from repro.db import Database, HeapFile, PageFullError, preset
from repro.db.database import LockWait
from repro.errors import TransactionError


def make_db(name, **kw):
    defaults = dict(group_size=4, num_groups=8, buffer_capacity=6)
    defaults.update(kw)
    db = Database(preset(name, **defaults))
    db.format_record_pages(range(db.num_data_pages))
    return db


RECORD_PRESETS = ["record-force-rda", "record-force-log",
                  "record-noforce-rda", "record-noforce-log"]


@pytest.fixture(params=RECORD_PRESETS)
def db(request):
    return make_db(request.param)


class TestRecordCRUD:
    def test_insert_read(self, db):
        t = db.begin()
        slot = db.insert_record(t, 0, b"rec")
        assert db.read_record(t, 0, slot) == b"rec"
        db.commit(t)

    def test_update(self, db):
        t = db.begin()
        slot = db.insert_record(t, 0, b"old")
        db.commit(t)
        t2 = db.begin()
        db.update_record(t2, 0, slot, b"new")
        db.commit(t2)
        t3 = db.begin()
        assert db.read_record(t3, 0, slot) == b"new"

    def test_delete(self, db):
        t = db.begin()
        slot = db.insert_record(t, 0, b"temp")
        db.commit(t)
        t2 = db.begin()
        assert db.delete_record(t2, 0, slot) == b"temp"
        db.commit(t2)
        t3 = db.begin()
        with pytest.raises(KeyError):
            db.read_record(t3, 0, slot)

    def test_page_write_rejected_in_record_mode(self, db):
        t = db.begin()
        with pytest.raises(TransactionError):
            db.write_page(t, 0, bytes(512))


class TestRecordAbort:
    def test_abort_update(self, db):
        t = db.begin()
        slot = db.insert_record(t, 0, b"v0")
        db.commit(t)
        t2 = db.begin()
        db.update_record(t2, 0, slot, b"v1")
        db.abort(t2)
        t3 = db.begin()
        assert db.read_record(t3, 0, slot) == b"v0"

    def test_abort_insert_removes_record(self, db):
        t = db.begin()
        slot = db.insert_record(t, 0, b"ghost")
        db.abort(t)
        t2 = db.begin()
        with pytest.raises(KeyError):
            db.read_record(t2, 0, slot)

    def test_abort_delete_restores_record(self, db):
        t = db.begin()
        slot = db.insert_record(t, 0, b"keep")
        db.commit(t)
        t2 = db.begin()
        db.delete_record(t2, 0, slot)
        db.abort(t2)
        t3 = db.begin()
        assert db.read_record(t3, 0, slot) == b"keep"

    def test_abort_after_steal(self, db):
        t = db.begin()
        slot = db.insert_record(t, 0, b"v0")
        db.commit(t)
        loser = db.begin()
        db.update_record(loser, 0, slot, b"v1")
        if db.checkpointer is not None:
            db.checkpoint()     # flush committed residue first
        spill = db.begin()
        for p in range(1, 14):
            db.insert_record(spill, p, b"spill")
        db.commit(spill)
        db.abort(loser)
        t3 = db.begin()
        assert db.read_record(t3, 0, slot) == b"v0"
        assert db.verify_parity() == []

    def test_abort_preserves_other_txn_changes_on_page(self, db):
        """Record locking: two active transactions share a page; aborting
        one must keep the other's buffered changes."""
        setup = db.begin()
        a = db.insert_record(setup, 0, b"aaa")
        b = db.insert_record(setup, 0, b"bbb")
        db.commit(setup)
        t1, t2 = db.begin(), db.begin()
        db.update_record(t1, 0, a, b"A-1")
        db.update_record(t2, 0, b, b"B-2")
        db.abort(t1)
        assert db.read_record(t2, 0, b) == b"B-2"
        assert db.read_record(t2, 0, a) == b"aaa"
        db.commit(t2)
        t3 = db.begin()
        assert db.read_record(t3, 0, a) == b"aaa"
        assert db.read_record(t3, 0, b) == b"B-2"


class TestPromotion:
    def test_second_txn_on_stolen_page_triggers_promotion(self):
        db = make_db("record-force-rda", buffer_capacity=4)
        setup = db.begin()
        a = db.insert_record(setup, 0, b"aaa")
        b = db.insert_record(setup, 0, b"bbb")
        db.commit(setup)
        t1 = db.begin()
        db.update_record(t1, 0, a, b"A-1")
        # spill to force an unlogged steal of page 0
        spill = db.begin()
        for p in range(1, 10):
            db.insert_record(spill, p, b"spill")
        db.commit(spill)
        group = db.array.geometry.group_of(0)
        assert db.rda.dirty_set.is_dirty(group)
        # now a different transaction touches the same page
        t2 = db.begin()
        db.update_record(t2, 0, b, b"B-2")
        assert db.counters.promotions == 1
        assert not db.rda.dirty_set.is_dirty(group)
        # both abort paths still restore correctly
        db.abort(t1)
        db.abort(t2)
        t3 = db.begin()
        assert db.read_record(t3, 0, a) == b"aaa"
        assert db.read_record(t3, 0, b) == b"bbb"
        assert db.verify_parity() == []


class TestRecordLocking:
    def test_distinct_records_no_conflict(self, db):
        setup = db.begin()
        a = db.insert_record(setup, 0, b"aaa")
        b = db.insert_record(setup, 0, b"bbb")
        db.commit(setup)
        t1, t2 = db.begin(), db.begin()
        db.update_record(t1, 0, a, b"A")
        db.update_record(t2, 0, b, b"B")   # no LockWait
        db.commit(t1)
        db.commit(t2)

    def test_same_record_conflicts(self, db):
        setup = db.begin()
        a = db.insert_record(setup, 0, b"aaa")
        db.commit(setup)
        t1, t2 = db.begin(), db.begin()
        db.update_record(t1, 0, a, b"A")
        with pytest.raises(LockWait):
            db.update_record(t2, 0, a, b"B")
        db.commit(t1)
        db.update_record(t2, 0, a, b"B")
        db.commit(t2)


class TestHeapFile:
    def test_insert_scan(self, db):
        heap = HeapFile(db, range(4))
        t = db.begin()
        rids = [heap.insert(t, f"r{i}".encode()) for i in range(10)]
        db.commit(t)
        t2 = db.begin()
        found = dict(heap.scan(t2))
        assert len(found) == 10
        for i, rid in enumerate(rids):
            assert found[rid] == f"r{i}".encode()
        assert heap.record_count(t2) == 10

    def test_update_delete_via_heap(self, db):
        heap = HeapFile(db, range(2))
        t = db.begin()
        rid = heap.insert(t, b"x")
        heap.update(t, rid, b"y")
        assert heap.read(t, rid) == b"y"
        assert heap.delete(t, rid) == b"y"
        db.commit(t)

    def test_overflow_to_next_page(self, db):
        heap = HeapFile(db, range(2))
        t = db.begin()
        pages = set()
        for i in range(6):
            rid = heap.insert(t, b"z" * 150)
            pages.add(rid[0])
        db.commit(t)
        assert len(pages) == 2

    def test_full_heap_raises(self, db):
        heap = HeapFile(db, [0])
        t = db.begin()
        with pytest.raises(PageFullError):
            for _ in range(10):
                heap.insert(t, b"z" * 150)

    def test_empty_heap_rejected(self, db):
        with pytest.raises(ValueError):
            HeapFile(db, [])
