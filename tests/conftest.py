"""Shared test configuration: hypothesis profiles and multiprocessing.

The ``ci`` profile (selected via ``HYPOTHESIS_PROFILE=ci``) is
derandomized so CI failures reproduce exactly; ``dev`` is the local
default.  ``soak`` raises the example budget for the nightly tier.

The worker-process tests (``tests/db/test_workers_determinism.py`` and
friends) spawn shard engines via :mod:`repro.db.workers`, which asks
for the ``fork`` start method where the platform has it (cheap, and the
worker re-imports nothing) and ``spawn`` elsewhere.  Pinning the global
default here keeps every test file deterministic about which method it
gets regardless of import order or what an earlier test set; the
``REPRO_MP_START`` env override still wins inside the engine itself.
"""

import multiprocessing
import os

from hypothesis import settings

_PREFERRED_START = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn")
try:
    multiprocessing.set_start_method(_PREFERRED_START)
except RuntimeError:       # already set by the embedding process: keep it
    pass

settings.register_profile("dev", max_examples=100)
settings.register_profile("ci", max_examples=100, derandomize=True,
                          print_blob=True)
settings.register_profile("soak", max_examples=1000)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
