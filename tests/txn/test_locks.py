"""Tests for the lock manager: modes, queues, upgrades, deadlocks."""

import pytest

from repro.errors import DeadlockError, LockError
from repro.txn import LockManager, LockMode

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


@pytest.fixture
def lm():
    return LockManager()


class TestGrants:
    def test_shared_locks_compatible(self, lm):
        assert lm.acquire(1, "r", S)
        assert lm.acquire(2, "r", S)
        assert lm.holds(1, "r", S) and lm.holds(2, "r", S)

    def test_exclusive_blocks_shared(self, lm):
        assert lm.acquire(1, "r", X)
        assert not lm.acquire(2, "r", S)
        assert not lm.holds(2, "r")

    def test_shared_blocks_exclusive(self, lm):
        assert lm.acquire(1, "r", S)
        assert not lm.acquire(2, "r", X)

    def test_reacquire_held_lock(self, lm):
        assert lm.acquire(1, "r", X)
        assert lm.acquire(1, "r", X)
        assert lm.acquire(1, "r", S)    # X covers S

    def test_distinct_resources_independent(self, lm):
        assert lm.acquire(1, "a", X)
        assert lm.acquire(2, "b", X)

    def test_holds_mode_semantics(self, lm):
        lm.acquire(1, "r", S)
        assert lm.holds(1, "r", S)
        assert not lm.holds(1, "r", X)

    def test_locks_of(self, lm):
        lm.acquire(1, "a", S)
        lm.acquire(1, "b", X)
        assert lm.locks_of(1) == ["a", "b"]


class TestUpgrades:
    def test_sole_holder_upgrade(self, lm):
        lm.acquire(1, "r", S)
        assert lm.acquire(1, "r", X)
        assert lm.holds(1, "r", X)

    def test_contended_upgrade_queues(self, lm):
        lm.acquire(1, "r", S)
        lm.acquire(2, "r", S)
        assert not lm.acquire(1, "r", X)
        grants = lm.release_all(2)
        assert any(g.txn_id == 1 and g.mode is X for g in grants)
        assert lm.holds(1, "r", X)


class TestQueueing:
    def test_fifo_promotion(self, lm):
        lm.acquire(1, "r", X)
        assert not lm.acquire(2, "r", X)
        assert not lm.acquire(3, "r", X)
        grants = lm.release_all(1)
        assert [g.txn_id for g in grants] == [2]
        grants = lm.release_all(2)
        assert [g.txn_id for g in grants] == [3]

    def test_shared_waiters_promoted_together(self, lm):
        lm.acquire(1, "r", X)
        lm.acquire(2, "r", S)
        lm.acquire(3, "r", S)
        grants = lm.release_all(1)
        assert sorted(g.txn_id for g in grants) == [2, 3]

    def test_waiter_does_not_jump_queue(self, lm):
        """A shared request behind a queued exclusive must wait (no
        starvation of the X waiter)."""
        lm.acquire(1, "r", S)
        assert not lm.acquire(2, "r", X)
        assert not lm.acquire(3, "r", S)
        grants = lm.release_all(1)
        assert [g.txn_id for g in grants] == [2]

    def test_release_single(self, lm):
        lm.acquire(1, "r", X)
        lm.release(1, "r")
        assert lm.acquire(2, "r", X)

    def test_release_unheld_raises(self, lm):
        with pytest.raises(LockError):
            lm.release(1, "r")

    def test_release_all_clears_waits(self, lm):
        lm.acquire(1, "r", X)
        lm.acquire(2, "r", X)
        assert lm.waiting(2)
        lm.release_all(2)
        assert not lm.waiting(2)
        lm.release_all(1)
        assert lm.acquire(3, "r", X)


class TestDeadlock:
    def test_two_party_cycle(self, lm):
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        assert not lm.acquire(1, "b", X)
        with pytest.raises(DeadlockError) as info:
            lm.acquire(2, "a", X)
        assert info.value.txn_id == 2
        assert set(info.value.cycle) == {1, 2}

    def test_three_party_cycle(self, lm):
        for txn, res in ((1, "a"), (2, "b"), (3, "c")):
            lm.acquire(txn, res, X)
        assert not lm.acquire(1, "b", X)
        assert not lm.acquire(2, "c", X)
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", X)

    def test_victim_request_not_queued(self, lm):
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        lm.acquire(1, "b", X)
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", X)
        # victim can still release and let 1 proceed
        grants = lm.release_all(2)
        assert any(g.txn_id == 1 for g in grants)

    def test_no_false_positive(self, lm):
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        assert not lm.acquire(1, "b", X)   # 1 waits on 2; no cycle
        assert lm.waiting(1)

    def test_wait_for_graph_shape(self, lm):
        lm.acquire(1, "a", X)
        lm.acquire(2, "a", X)
        graph = lm.wait_for_graph()
        assert graph == {2: {1}}
