"""History recording, serialization, and trace-transport round trips."""

import json

import pytest

from repro.check import History, HistoryEvent, HistoryRecorder, history_from_trace
from repro.check.history import history_from_trace_file
from repro.db import Database, preset
from repro.obs import RingBufferSink, Tracer
from repro.storage import make_page


class TestHistoryEvent:
    def test_round_trip(self):
        event = HistoryEvent(seq=3, op="steal", txn=7, page=2,
                             extra=(("logged", True),))
        assert HistoryEvent.from_dict(event.to_dict()) == event

    def test_to_dict_omits_none(self):
        event = HistoryEvent(seq=0, op="crash")
        assert event.to_dict() == {"seq": 0, "op": "crash"}

    def test_extra_lookup(self):
        event = HistoryEvent(seq=0, op="steal", extra=(("logged", False),))
        assert event.get("logged") is False
        assert event.get("missing", 42) == 42

    def test_recorder_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            HistoryRecorder().record("tickle")


class TestHistoryContainer:
    def test_json_round_trip(self):
        recorder = HistoryRecorder()
        recorder.record("begin", txn=1)
        recorder.record("write", txn=1, page=0)
        recorder.record("commit", txn=1)
        history = recorder.history
        assert History.from_json(history.to_json()) == history

    def test_queries(self):
        recorder = HistoryRecorder()
        recorder.record("begin", txn=1)
        recorder.record("begin", txn=2)
        recorder.record("commit", txn=1)
        recorder.record("abort", txn=2)
        history = recorder.history
        assert history.committed_txns() == {1}
        assert history.aborted_txns() == {2}
        assert history.txns() == {1, 2}
        assert len(history.of_op("begin")) == 2


class TestDatabaseRecording:
    def test_page_mode_operations_recorded(self):
        recorder = HistoryRecorder()
        db = Database(preset("page-force-rda", group_size=5, num_groups=12,
                             buffer_capacity=4), history=recorder)
        t = db.begin()
        db.write_page(t, 0, make_page(b"a"))
        db.read_page(t, 1)
        db.buffer.flush_pages_of(t)     # forces a steal
        db.commit(t)
        ops = [e.op for e in recorder.history]
        assert ops[0] == "begin"
        assert "write" in ops and "read" in ops
        assert "steal" in ops and "flip" in ops
        assert ops[-1] == "commit"
        steal = recorder.history.of_op("steal")[0]
        assert steal.txn == t and steal.page == 0
        assert steal.get("logged") is False

    def test_crash_restart_recorded(self):
        recorder = HistoryRecorder()
        db = Database(preset("page-force-rda", group_size=5, num_groups=12,
                             buffer_capacity=4), history=recorder)
        t = db.begin()
        db.write_page(t, 0, make_page(b"a"))
        db.crash()
        db.recover()
        ops = [e.op for e in recorder.history]
        assert ops[-2:] == ["crash", "restart"]

    def test_seq_strictly_increasing(self):
        recorder = HistoryRecorder()
        db = Database(preset("record-noforce-rda", group_size=5,
                             num_groups=12, buffer_capacity=20),
                      history=recorder)
        db.format_record_pages(range(4))
        t = db.begin()
        db.insert_record(t, 0, b"x")
        db.read_record(t, 0, 0)
        db.commit(t)
        seqs = [e.seq for e in recorder.history]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        read = recorder.history.of_op("read")[0]
        assert read.slot == 0


class TestTraceTransport:
    def _traced_run(self):
        recorder = HistoryRecorder()
        sink = RingBufferSink(capacity=10_000)
        db = Database(preset("page-force-rda", group_size=5, num_groups=12,
                             buffer_capacity=4), tracer=Tracer(sink),
                      history=recorder)
        t = db.begin()
        db.write_page(t, 0, make_page(b"a"))
        db.buffer.flush_pages_of(t)
        db.commit(t)
        loser = db.begin()
        db.write_page(loser, 1, make_page(b"b"))
        db.abort(loser)
        return recorder.history, sink.events()

    def test_trace_rebuilds_equal_history(self):
        history, events = self._traced_run()
        assert history_from_trace(events) == history

    def test_trace_file_rebuilds_equal_history(self, tmp_path):
        history, events = self._traced_run()
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        assert history_from_trace_file(path) == history
