"""Tests for the Chrome trace-event/Perfetto exporter: structural
validation of the document Perfetto loads."""

import json

from repro.db import Database, ShardedDatabase, preset
from repro.obs import BufferedJsonlSink, Tracer, export_chrome_trace
from repro.obs.export import export_trace_file
from repro.sim import Simulator, WorkloadSpec

VALID_PHASES = {"X", "i", "M", "C"}


def traced_run(tmp_path, shards=1):
    path = tmp_path / "run.jsonl"
    tracer = Tracer(BufferedJsonlSink(path, flush_every=8))
    config = preset("page-force-rda", group_size=4, num_groups=16,
                    buffer_capacity=12)
    db = (ShardedDatabase(config, shards=shards, tracer=tracer)
          if shards > 1 else Database(config, tracer=tracer))
    simulator = Simulator(db, WorkloadSpec(concurrency=2, pages_per_txn=3),
                          seed=2)
    simulator.run(15, crash_every=8)
    tracer.close()
    return path


class TestStructure:
    def test_document_shape(self):
        events = [
            {"seq": 1, "ts": 0.001, "name": "txn.begin",
             "attrs": {"txn": 1}},
            {"seq": 2, "ts": 0.004, "name": "recovery.restart",
             "attrs": {"dur_ms": 2.0, "transfers": 5}},
        ]
        doc = export_chrome_trace(events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        for record in doc["traceEvents"]:
            assert record["ph"] in VALID_PHASES
            assert isinstance(record.get("name"), str)
            if record["ph"] != "M":
                assert isinstance(record["ts"], float)

    def test_span_becomes_complete_event_with_rewound_ts(self):
        events = [{"seq": 1, "ts": 0.010, "name": "recovery.restart",
                   "attrs": {"dur_ms": 4.0}}]
        doc = export_chrome_trace(events)
        (record,) = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        # the tracer stamps span *ends*: ts 10ms, dur 4ms → start 6ms
        assert record["ts"] == 6_000.0
        assert record["dur"] == 4_000.0

    def test_point_event_becomes_instant(self):
        events = [{"seq": 1, "ts": 0.002, "name": "db.crash"}]
        doc = export_chrome_trace(events)
        (record,) = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert record["ts"] == 2_000.0
        assert record["s"] == "t"

    def test_recovery_phase_named_after_phase(self):
        events = [{"seq": 1, "ts": 0.003, "name": "recovery.phase",
                   "attrs": {"phase": "redo", "dur_ms": 1.0}}]
        doc = export_chrome_trace(events)
        (record,) = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert record["name"] == "recovery.redo"

    def test_shard_label_maps_to_thread_track(self):
        events = [
            {"seq": 1, "ts": 0.001, "name": "op",
             "attrs": {"shard": 0, "dur_ms": 0.1}},
            {"seq": 2, "ts": 0.002, "name": "op",
             "attrs": {"shard": 1, "dur_ms": 0.1}},
            {"seq": 3, "ts": 0.003, "name": "facade.op"},
        ]
        doc = export_chrome_trace(events)
        slices = [r for r in doc["traceEvents"] if r["ph"] in ("X", "i")]
        assert sorted(r["tid"] for r in slices) == [0, 1, 2]
        names = {r["tid"]: r["args"]["name"] for r in doc["traceEvents"]
                 if r["ph"] == "M" and r["name"] == "thread_name"}
        assert names[0] == "engine"
        assert names[1] == "shard 0"
        assert names[2] == "shard 1"

    def test_transfer_counter_track_is_cumulative(self):
        events = [
            {"seq": 1, "ts": 0.001, "name": "a",
             "attrs": {"transfers": 3, "dur_ms": 0.1}},
            {"seq": 2, "ts": 0.002, "name": "b",
             "attrs": {"transfers": 4, "dur_ms": 0.1}},
        ]
        doc = export_chrome_trace(events)
        counters = [r for r in doc["traceEvents"] if r["ph"] == "C"]
        assert [c["args"]["transfers"] for c in counters] == [3, 7]
        doc = export_chrome_trace(events, counters=False)
        assert not [r for r in doc["traceEvents"] if r["ph"] == "C"]

    def test_args_carry_attrs_without_dur(self):
        events = [{"seq": 1, "ts": 0.001, "name": "op",
                   "attrs": {"dur_ms": 1.0, "reads": 2, "page": 7}}]
        doc = export_chrome_trace(events)
        (record,) = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert record["args"] == {"reads": 2, "page": 7}


class TestEndToEnd:
    def test_real_trace_round_trips_through_json(self, tmp_path):
        src = traced_run(tmp_path)
        out = tmp_path / "run.perfetto.json"
        count = export_trace_file(src, out)
        assert count > 0
        doc = json.loads(out.read_text())
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert phases <= VALID_PHASES
        assert any(r["ph"] == "X" for r in doc["traceEvents"])
        # every complete event starts at a non-negative timestamp and
        # the recovery phases made it onto the timeline
        xs = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert all(r["ts"] >= 0 and r["dur"] >= 0 for r in xs)
        assert any(r["name"].startswith("recovery.") for r in xs)

    def test_sharded_trace_renders_k_tracks(self, tmp_path):
        src = traced_run(tmp_path, shards=2)
        out = tmp_path / "run.perfetto.json"
        export_trace_file(src, out)
        doc = json.loads(out.read_text())
        tids = {r["tid"] for r in doc["traceEvents"]
                if r["ph"] in ("X", "i")}
        assert {1, 2} <= tids       # one track per shard
