"""The workload driver: P-way concurrent transactions over a Database.

Runs :class:`~repro.sim.workload.TransactionScript` streams under a
deterministic round-robin interleaving (the same discipline the
:class:`~repro.db.sharded.ShardScheduler` applies across shard
engines): each step advances one transaction by one page access.  The
driver is engine-agnostic — a single :class:`Database` or a K-way
:class:`~repro.db.sharded.ShardedDatabase` plug in equally.  Lock waits
suspend a transaction until its blocker finishes; deadlock victims are
rolled back and counted.  The driver measures exactly what the paper's
model predicts — page transfers per committed transaction — plus the
empirical logging probability for cross-validation against Eq. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from time import perf_counter

from ..db.database import Database, LockWait
from ..errors import BufferFullError, DeadlockError
from ..obs.recovery_profile import RecoveryProfile
from .metrics import SimulationReport
from .workload import WorkloadGenerator, WorkloadSpec


def seeding_batches(db) -> list:
    """Page batches for record-mode seeding, one transaction each.

    The REDO-only classes hold every uncommitted dirty page in the
    buffer (write-behind gate), so one giant seeding transaction
    overflows any realistic pool; seed one parity group's worth of
    pages per transaction instead.  Other classes keep the original
    single transaction, byte-identical to before.
    """
    pages = db.num_data_pages
    if not getattr(db.config, "redo_only", False):
        return [list(range(pages))]
    size = max(db.config.group_size, 1)
    return [list(range(start, min(start + size, pages)))
            for start in range(0, pages, size)]


@dataclass
class _LiveTxn:
    """One in-flight transaction's driver state."""

    txn_id: int
    script: object
    position: int = 0
    version: int = 0
    waiting: bool = False


class Simulator:
    """Drives a :class:`Database` with a synthetic workload.

    Args:
        db: the database under test.
        spec: workload knobs.
        seed: RNG seed for the generator.
        buffer_feedback: realize communality by sampling the *actual*
            resident set (default).  Disable for workloads that must be
            identical across configurations (the resident set evolves
            slightly differently per recovery discipline, e.g. abort
            paths re-insert pages under ¬FORCE).
        conformance: optional observer mirroring the operation stream
            (e.g. :class:`~repro.check.differential.DifferentialMirror`);
            must provide ``begin/read/write/commit/abort/crash``.
    """

    def __init__(self, db: Database, spec: WorkloadSpec, seed: int = 0,
                 buffer_feedback: bool = True, timed: bool = False,
                 conformance=None) -> None:
        self.db = db
        self.spec = spec
        self.generator = WorkloadGenerator(spec, db.num_data_pages, seed=seed)
        self.report = SimulationReport()
        self._live: list = []
        self._started = 0
        self._buffer_stalls = 0
        self.record_mode = db.config.record_logging
        self.buffer_feedback = buffer_feedback
        self.conformance = conformance
        self.observer = None
        if timed:
            from .timed import TimedObserver
            self.observer = TimedObserver.attach(db)
        # recovery profiling needs the phase-span stream, so it exists
        # exactly when tracing does; this also keeps untraced reports
        # byte-identical across runs (wall-clock MTTR is not
        # deterministic, the determinism suite runs untraced)
        self.profile = None
        if db.tracer.enabled:
            self.profile = RecoveryProfile(
                recovery_class=db.config.algorithm_name)
            db.tracer.add_observer(self.profile.observe)

    def seed_records(self) -> None:
        """Record-mode setup: format every page and put one record in
        slot 0 (the record the driver reads/updates)."""
        self.db.format_record_pages(range(self.db.num_data_pages))
        for batch in seeding_batches(self.db):
            txn = self.db.begin()
            for page in batch:
                self.db.insert_record(txn, page, b"seed")
            self.db.commit(txn)

    # -- driving -------------------------------------------------------------------

    def run(self, transactions: int, crash_every: int | None = None) -> SimulationReport:
        """Run until ``transactions`` have finished.

        Args:
            transactions: number of transactions to complete.
            crash_every: if set, crash + recover after every that many
                completed transactions (exercises restart recovery under
                load).
        """
        run_t0 = perf_counter() if self.profile is not None else None
        finished_at_last_crash = 0
        while self.report.transactions < transactions:
            self._fill_slots(transactions)
            if not self._live:
                break
            progressed = self._step_round()
            if not progressed:
                self._break_stall()
            if crash_every is not None and (
                    self.report.transactions - finished_at_last_crash
                    >= crash_every):
                self.crash_and_recover()
                finished_at_last_crash = self.report.transactions
        if self.profile is not None:
            self.profile.finalize(
                run_wall_ms=(perf_counter() - run_t0) * 1e3)
        self._finalize_metrics()
        return self.report

    def _fill_slots(self, budget: int) -> None:
        capacity = self.spec.concurrency
        while (len(self._live) < capacity
               and self._started < budget):
            resident = (self.db.buffer.resident_pages()
                        if self.buffer_feedback else ())
            script = self.generator.next_script(resident)
            txn_id = self.db.begin()
            if self.conformance is not None:
                self.conformance.begin(txn_id)
            self._live.append(_LiveTxn(txn_id=txn_id, script=script))
            self._started += 1

    def _step_round(self) -> bool:
        progressed = False
        for live in list(self._live):
            if live.waiting and not self.db.grants_for(live.txn_id):
                continue
            live.waiting = False
            progressed = self._advance(live) or progressed
        return progressed

    def _advance(self, live: _LiveTxn) -> bool:
        """One page access (or EOT) for one transaction."""
        script = live.script
        if live.position >= len(script.accesses):
            self._finish(live)
            return True
        access = script.accesses[live.position]
        observed = None     # (page, slot, value, is_write) for conformance
        try:
            if self.record_mode:
                if access.update:
                    live.version += 1
                    payload = (f"p{access.page}v{live.version}"
                               f"t{live.txn_id}".encode())
                    self.db.update_record(live.txn_id, access.page, 0,
                                          payload)
                    observed = (access.page, 0, payload, True)
                else:
                    value = self.db.read_record(live.txn_id, access.page, 0)
                    observed = (access.page, 0, value, False)
            elif access.update:
                live.version += 1
                payload = self.generator.payload_for(access.page, live.version)
                self.db.write_page(live.txn_id, access.page, payload)
                observed = (access.page, None, payload, True)
            else:
                value = self.db.read_page(live.txn_id, access.page)
                observed = (access.page, None, value, False)
        except LockWait:
            live.waiting = True
            return False
        except DeadlockError:
            self.db.abort(live.txn_id)
            if self.conformance is not None:
                self.conformance.abort(live.txn_id)
            self._live.remove(live)
            self.report.aborted += 1
            self.report.deadlocks += 1
            return True
        except BufferFullError:
            # REDO-only back-pressure: every frame is pinned or held by
            # the write-behind gate.  Rolling this transaction back
            # releases its gated frames, like a real engine cancelling
            # the statement that cannot get a free frame.
            self.db.abort(live.txn_id)
            if self.conformance is not None:
                self.conformance.abort(live.txn_id)
            self._live.remove(live)
            self.report.aborted += 1
            self._buffer_stalls += 1
            return True
        if self.conformance is not None and observed is not None:
            page, slot, value, is_write = observed
            if is_write:
                self.conformance.write(live.txn_id, page, slot, value)
            else:
                self.conformance.read(live.txn_id, page, slot, value)
        live.position += 1
        return True

    def _finish(self, live: _LiveTxn) -> None:
        wants_abort = live.script.wants_abort
        if wants_abort and self.db.txns.get(live.txn_id).must_commit:
            # a media failure destroyed this transaction's parity-encoded
            # before-image; it was pinned to commit
            wants_abort = False
        if wants_abort:
            self.db.abort(live.txn_id)
            if self.conformance is not None:
                self.conformance.abort(live.txn_id)
            self.report.aborted += 1
        else:
            self.db.commit(live.txn_id)
            if self.conformance is not None:
                self.conformance.commit(live.txn_id)
            self.report.committed += 1
        self._live.remove(live)
        if self.db.checkpointer is not None:
            self.db.checkpointer.note_work(self.spec.pages_per_txn)
            if self.db.checkpointer.maybe_checkpoint() is not None:
                self.report.checkpoints += 1

    def _break_stall(self) -> None:
        """Every live transaction is waiting: abort the youngest waiter.

        The eager deadlock detector prevents true cycles, but a waiter
        can starve behind a suspended holder; rolling one back keeps the
        round-robin moving (and counts as an abort, like a timeout-based
        resolver would)."""
        victim = self._live[-1]
        self.db.abort(victim.txn_id)
        if self.conformance is not None:
            self.conformance.abort(victim.txn_id)
        self._live.remove(victim)
        self.report.aborted += 1
        self.report.deadlocks += 1

    # -- failures -------------------------------------------------------------------------

    def crash_and_recover(self) -> dict:
        """Crash the database mid-load, recover, roll live state forward."""
        self.db.tracer.emit("sim.crash", live_txns=len(self._live),
                            finished=self.report.transactions)
        if self.profile is not None:
            self.profile.begin_cycle()
        self.db.crash()
        if self.conformance is not None:
            self.conformance.crash()
        before = self.db.stats.total
        stats = self.db.recover()
        if self.profile is not None:
            self.profile.end_cycle(stats)
        self.report.crashes += 1
        self.report.recovery_transfers += self.db.stats.total - before
        # every in-flight transaction died with main memory
        self.report.aborted += len(self._live)
        self._live.clear()
        return stats

    # -- wrap-up ------------------------------------------------------------------------------

    def _finalize_metrics(self) -> None:
        for live in list(self._live):
            if self.db.txns.get(live.txn_id).must_commit:
                self.db.commit(live.txn_id)
                if self.conformance is not None:
                    self.conformance.commit(live.txn_id)
                self.report.committed += 1
            else:
                self.db.abort(live.txn_id)
                if self.conformance is not None:
                    self.conformance.abort(live.txn_id)
                self.report.aborted += 1
        self._live.clear()
        self.report.page_transfers = self.db.stats.total
        self.report.buffer_hit_ratio = self.db.buffer.stats.hit_ratio
        self.report.unlogged_steal_fraction = \
            self.db.counters.unlogged_fraction
        self.report.extra["steals"] = self.db.counters.steals
        if self._buffer_stalls:
            self.report.extra["buffer_stalls"] = self._buffer_stalls
        self.report.extra["before_images_logged"] = \
            self.db.counters.before_images_logged
        if self.observer is not None:
            self.report.extra["busy_ms"] = round(self.observer.total_busy_ms, 1)
            self.report.extra["busiest_arm_ms"] = round(
                self.observer.busiest_ms, 1)
            self.report.extra["seeks"] = self.observer.total_seeks
        if self.db.metrics is not None:
            self.report.extra["metrics"] = self.db.metrics.snapshot()
        if self.db.tracer.enabled:
            self.report.extra["trace_events"] = self.db.tracer.events_emitted
        if self.profile is not None and self.profile.crashes:
            self.report.extra["recovery_profile"] = self.profile.to_dict()


def run_workload(db: Database, spec: WorkloadSpec, transactions: int,
                 seed: int = 0, crash_every: int | None = None) -> SimulationReport:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(db, spec, seed=seed).run(transactions,
                                              crash_every=crash_every)
