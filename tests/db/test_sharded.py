"""The K-way sharded engine: routing, scheduler, commit/recovery
semantics, facades, and the group-commit crash contract.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import Database, ShardedDatabase, ShardScheduler, preset, \
    shard_config
from repro.db.verify import verify_database
from repro.errors import ModelError, TransactionError
from repro.obs import MetricsRegistry
from repro.storage import make_page


def make_db(shards=2, flush_horizon=1, name="page-force-rda", **extra):
    overrides = dict(group_size=4, num_groups=8, buffer_capacity=8)
    overrides.update(extra)
    return ShardedDatabase(preset(name, **overrides), shards=shards,
                           flush_horizon=flush_horizon)


class TestScheduler:
    def test_rotating_round_robin(self):
        scheduler = ShardScheduler(3)
        assert scheduler.order() == [0, 1, 2]
        assert scheduler.order() == [1, 2, 0]
        assert scheduler.order() == [2, 0, 1]
        assert scheduler.order() == [0, 1, 2]

    def test_each_order_is_a_permutation(self):
        scheduler = ShardScheduler(5)
        for _ in range(11):
            assert sorted(scheduler.order()) == [0, 1, 2, 3, 4]


class TestConfigAndRouting:
    def test_shards_must_be_positive(self):
        with pytest.raises(ModelError):
            make_db(shards=0)

    def test_shard_config_splits_groups_and_buffer(self):
        config = preset("page-force-rda", num_groups=8, buffer_capacity=8)
        per_shard = shard_config(config, 4)
        assert per_shard.num_groups == 2
        assert per_shard.buffer_capacity == 2

    def test_num_data_pages_covers_all_shards(self):
        db = make_db(shards=2)
        assert db.num_data_pages == \
            2 * db.shards[0].num_data_pages

    def test_page_out_of_range(self):
        db = make_db(shards=2)
        txn = db.begin()
        with pytest.raises(ModelError):
            db.read_page(txn, db.num_data_pages)

    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_routing_partitions_the_page_space(self, shards, data):
        """Every global page id maps to exactly one (shard, local) cell
        and the map is a bijection: global_page inverts _route, no two
        pages collide, and shard ownership is page % K."""
        db = make_db(shards=shards)
        pages = data.draw(st.lists(
            st.integers(min_value=0, max_value=db.num_data_pages - 1),
            min_size=1, max_size=30))
        seen = {}
        for page in pages:
            shard, local = db._route(page)
            assert shard == page % shards
            assert 0 <= local < db.shards[shard].num_data_pages
            assert db.global_page(shard, local) == page
            if (shard, local) in seen:
                assert seen[(shard, local)] == page
            seen[(shard, local)] = page

    def test_routing_is_exhaustive_and_disjoint(self):
        db = make_db(shards=4)
        cells = {db._route(page) for page in range(db.num_data_pages)}
        assert len(cells) == db.num_data_pages  # injective
        per_shard = {}
        for shard, local in cells:
            per_shard.setdefault(shard, set()).add(local)
        for shard, locals_ in per_shard.items():
            # each shard owns a dense prefix of its local space
            assert locals_ == set(range(len(locals_)))


class TestTransactions:
    def test_commit_visible_on_every_shard(self):
        db = make_db(shards=2)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"shard zero"))
        db.write_page(txn, 1, make_page(b"shard one"))
        db.commit(txn)
        assert db.disk_page(0) == make_page(b"shard zero") or \
            db.committed_view(0) == make_page(b"shard zero")
        assert db.committed_view(1) == make_page(b"shard one")
        assert db.counters.transactions_committed == 1

    def test_abort_rolls_back_everywhere(self):
        db = make_db(shards=2)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"keep"))
        db.commit(txn)
        loser = db.begin()
        db.write_page(loser, 0, make_page(b"drop0"))
        db.write_page(loser, 1, make_page(b"drop1"))
        db.abort(loser)
        assert db.committed_view(0) == make_page(b"keep")
        from repro.storage.page import ZERO_PAGE
        assert db.committed_view(1) == ZERO_PAGE

    def test_global_ids_pinned_on_all_shards(self):
        db = make_db(shards=3)
        first, second = db.begin(), db.begin()
        assert first != second
        for shard in db.shards:
            assert shard.txns.get(first).is_active
            assert shard.txns.get(second).is_active
        db.commit(first)
        db.abort(second)

    def test_unknown_txn_rejected(self):
        db = make_db(shards=2)
        with pytest.raises(TransactionError):
            db.commit(999)


class TestCrashRecovery:
    def test_crash_contract_drains_acknowledged_commits(self):
        """With a batched force pending, a crash must keep every
        acknowledged commit durable on every shard."""
        db = make_db(shards=2, flush_horizon=8)
        for i in range(3):
            txn = db.begin()
            db.write_page(txn, i, make_page(b"txn %d" % i))
            db.commit(txn)
        # horizon not reached: forces are still pending in the window
        assert db.coordinator.pending_logs > 0
        db.crash()
        stats = db.recover()
        assert set(stats["winners"]) == {1, 2, 3}
        assert stats["losers"] == []
        for i in range(3):
            assert db.committed_view(i) == make_page(b"txn %d" % i)
        assert verify_database(db) == []

    def test_in_flight_transaction_is_a_loser_everywhere(self):
        db = make_db(shards=2, flush_horizon=4)
        winner = db.begin()
        db.write_page(winner, 0, make_page(b"win"))
        db.commit(winner)
        loser = db.begin()
        db.write_page(loser, 2, make_page(b"lose0"))
        db.write_page(loser, 3, make_page(b"lose1"))
        db.crash()
        stats = db.recover()
        assert winner in stats["winners"]
        assert loser in stats["losers"]
        from repro.storage.page import ZERO_PAGE
        assert db.committed_view(2) == ZERO_PAGE
        assert db.committed_view(3) == ZERO_PAGE
        assert db.committed_view(0) == make_page(b"win")

    def test_recover_reports_per_shard_details(self):
        db = make_db(shards=2)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"x"))
        db.commit(txn)
        db.crash()
        stats = db.recover()
        assert sorted(stats["shards"]) == [0, 1]
        assert "page_transfers" in stats


class TestMediaFailures:
    def test_disk_ids_route_across_shards(self):
        db = make_db(shards=2)
        assert db.num_disks == 2 * db.disks_per_shard
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"payload"))
        db.commit(txn)
        victim = db.disks_per_shard  # first disk of shard 1
        db.media_failure(victim)
        report = db.media_recover(victim)
        assert report is not None
        assert db.verify_parity() == []

    def test_verify_parity_labels_shard(self):
        db = make_db(shards=2)
        assert db.verify_parity() == []


class TestFacades:
    def test_statistics_keys(self):
        db = make_db(shards=2, flush_horizon=4)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"s"))
        db.commit(txn)
        stats = db.statistics()
        assert stats["shards"] == 2
        assert stats["flush_horizon"] == 4
        for key in ("page_transfers", "deferred_forces", "batched_flushes",
                    "commit_log_bytes", "transactions_committed"):
            assert key in stats

    def test_buffer_facade_globalizes_resident_pages(self):
        db = make_db(shards=2)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"a"))
        db.write_page(txn, 1, make_page(b"b"))
        db.commit(txn)
        resident = db.buffer.resident_pages()
        assert 0 in resident and 1 in resident
        assert 0 in db.buffer and 1 in db.buffer

    def test_metrics_snapshot_carries_shard_labels(self):
        metrics = MetricsRegistry()
        config = preset("page-force-rda", group_size=4, num_groups=8,
                        buffer_capacity=8)
        db = ShardedDatabase(config, shards=2, metrics=metrics)
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"m"))
        db.commit(txn)
        counters = db.metrics.snapshot()["counters"]
        shard_labelled = [k for k in counters if "shard=" in k]
        assert shard_labelled, counters
        assert any("shard=0" in k for k in shard_labelled)

    def test_k1_matches_single_engine_committed_state(self):
        """A 1-way sharded engine is the legacy engine behind a facade."""
        config = preset("page-force-rda", group_size=4, num_groups=8,
                        buffer_capacity=8)
        single = Database(config)
        sharded = ShardedDatabase(config, shards=1, flush_horizon=1)
        for db in (single, sharded):
            txn = db.begin()
            db.write_page(txn, 0, make_page(b"same"))
            db.commit(txn)
            loser = db.begin()
            db.write_page(loser, 1, make_page(b"gone"))
            db.crash()
            db.recover()
        assert single.num_data_pages == sharded.num_data_pages
        for page in range(single.num_data_pages):
            assert single.committed_view(page) == sharded.committed_view(page)
        # costs differ only by the global commit log's records/forces
        assert sharded.stats.total >= single.stats.total
