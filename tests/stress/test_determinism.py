"""Satellite: same seed + profile => byte-identical schedule and report.

Mirrors ``tests/sim/test_determinism.py`` for the stress subsystem.
Wall-clock figures (throughput, faults/hour, MTTR) would normally break
byte-identity, so the runner takes an injectable clock; with a fake
deterministic clock the *entire* serialized report — nemesis schedule,
fault log, MTTR cycles, chaos ratio — must replay bit-for-bit.
"""

import json

from repro.stress import StressOptions, StressRunner


class FakeClock:
    """Deterministic perf_counter stand-in: advances 1 ms per call."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


def run_cell(seed, preset="page-noforce-rda", shards=1, profile="default"):
    options = StressOptions(preset=preset, shards=shards, seed=seed,
                            ops=48, batch_size=8, nemesis_profile=profile,
                            clock=FakeClock())
    runner = StressRunner(options)
    report = runner.run()
    return report, runner.nemesis.schedule


def as_json(value):
    return json.dumps(value, sort_keys=True)


class TestStressDeterminism:
    def test_schedule_byte_identical_per_seed(self):
        _, first = run_cell(7)
        _, second = run_cell(7)
        assert as_json(first) == as_json(second)

    def test_full_report_byte_identical_per_seed(self):
        first, _ = run_cell(7)
        second, _ = run_cell(7)
        assert as_json(first.to_dict()) == as_json(second.to_dict())

    def test_sharded_report_byte_identical_per_seed(self):
        first, _ = run_cell(5, preset="page-force-rda", shards=2)
        second, _ = run_cell(5, preset="page-force-rda", shards=2)
        assert as_json(first.to_dict()) == as_json(second.to_dict())

    def test_different_seeds_diverge(self):
        first, schedule_a = run_cell(7)
        second, schedule_b = run_cell(8)
        assert as_json(first.to_dict()) != as_json(second.to_dict())
        # the schedules themselves must differ, not just the metrics
        assert as_json(schedule_a) != as_json(schedule_b)

    def test_different_profiles_diverge(self):
        first, _ = run_cell(7, profile="default")
        second, _ = run_cell(7, profile="media-heavy")
        kinds_a = [a["kind"] for a in first.schedule]
        kinds_b = [a["kind"] for a in second.schedule]
        assert kinds_a != kinds_b

    def test_report_is_json_serializable_and_clean(self):
        report, _ = run_cell(7)
        doc = json.loads(as_json(report.to_dict()))
        assert doc["clean"] is True
        assert doc["faults"]["injected"] == doc["faults"]["survived"]
        assert doc["mttr"] is not None  # crash-like faults fed MTTR cycles
