"""Property tests for the log manager's full lifecycle.

Random interleavings of appends, forces, truncations and crashes must
preserve: LSNs strictly increasing among surviving records, `get`
agreeing with `records()`, duplex copies identical, and every surviving
record being one that was (a) appended, (b) not lost to a crash, and
(c) at or above the truncation floor.  A crash may rewind the unforced
tail, after which its LSN *positions* are legitimately reused — exactly
like a real WAL overwriting a torn tail.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wal import BOTRecord, LogManager, PageBeforeImage


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_log_lifecycle_invariants(data):
    log = LogManager(page_size=data.draw(st.sampled_from([64, 256, 2048]),
                                         label="page_size"),
                     transfers_per_log_page=1)
    shadow = {}            # lsn -> txn_id of appended records
    floor = 1              # lowest lsn that may still exist
    appended_lsns = []

    for _ in range(data.draw(st.integers(1, 30), label="steps")):
        action = data.draw(st.sampled_from(
            ["append", "append_big", "force", "truncate", "crash"]),
            label="action")
        if action == "append":
            txn = data.draw(st.integers(1, 9), label="txn")
            lsn = log.append(BOTRecord(txn_id=txn))
            assert lsn not in shadow            # unique among the living
            shadow[lsn] = txn
            appended_lsns.append(lsn)
        elif action == "append_big":
            txn = data.draw(st.integers(1, 9), label="btxn")
            lsn = log.append(PageBeforeImage(txn_id=txn, page_id=1,
                                             image=b"x" * 100))
            assert lsn not in shadow
            shadow[lsn] = txn
            appended_lsns.append(lsn)
        elif action == "force":
            log.force()
        elif action == "truncate" and appended_lsns:
            cut = data.draw(st.sampled_from(appended_lsns), label="cut")
            log.truncate_before(cut)
            floor = max(floor, cut)
        elif action == "crash":
            log.crash()
            log.after_crash()
            # records above the durable point died; their positions may
            # be reused by future appends
            shadow = {lsn: txn for lsn, txn in shadow.items()
                      if lsn <= log.last_lsn}
            appended_lsns = [lsn for lsn in appended_lsns
                             if lsn <= log.last_lsn]

    assert log.verify_duplex()
    survivors = log.records()
    lsns = [r.lsn for r in survivors]
    assert lsns == sorted(lsns)
    assert len(set(lsns)) == len(lsns)
    for record in survivors:
        assert record.lsn in shadow
        assert record.lsn >= floor
        assert record.txn_id == shadow[record.lsn]
        assert log.get(record.lsn) is record
    # next appends still work and keep growing
    new_lsn = log.append(BOTRecord(txn_id=99))
    assert new_lsn > max(lsns, default=0)
    assert new_lsn not in shadow
