"""Cost models for PAGE logging (paper Sections 5.2.1 and 5.2.2).

Two algorithm classes, each with and without RDA recovery:

* ``force_toc``   — ¬ATOMIC, STEAL, FORCE, TOC (Figure 9);
* ``noforce_acc`` — ¬ATOMIC, STEAL, ¬FORCE, ACC (Figure 10).

The scanned equations are partially OCR-damaged; each function's
docstring states the legible fragment and the reconstruction.  The
fixed points that anchor the reconstruction:

* a small array write costs 4 transfers, 3 with the old page buffered,
  and ``3 + 2 p_l`` on average under RDA (both twins when dirty);
* each log-page write costs 4 transfers (the duplexed logs live on a
  RAID as well: the paper's ``4 x`` coefficients);
* BOT and EOT records go to both log files: the ``4 x 4`` term;
* restoring a page from the parity twins costs 5 transfers, from the
  log into a dirty group 6 (both twins);
* the high-update headline: RDA improves FORCE/TOC throughput by about
  42% at C = 0.9, which this reconstruction reproduces.
"""

from __future__ import annotations

from .params import ModelParams
from .probabilities import (geometric_chain_term, logging_probability,
                            optimal_checkpoint_interval,
                            replaced_page_modified, stolen_before_eot)
from .throughput import (CostBreakdown, interval_throughput,
                         mean_transaction_cost)


def force_toc(params: ModelParams, rda: bool) -> CostBreakdown:
    """Page logging, FORCE + TOC (Section 5.2.1; Figure 9).

    Paper fragments implemented:

    * ¬RDA: ``c_l = 3 s p_u + 4 (2 s p_u) + 4 x 4`` — force each page
      (3, old data captured at first modification), before+after images
      (2 s p_u log pages at 4 each), BOT/EOT to both log files.
    * RDA: ``c_l' = (3 + 2 p_l) s p_u + 4 (s p_u + s p_u p_l + 4)
      + 4 (p_l - p_l^{s p_u})`` with K = P f_u s p_u / 2 in Eq. 5.
    * Backout reads the interleaved log back to BOT (P f_u s p_u / 2
      pages), rewrites the half-done transaction's pages (4 each from
      the log, 5-6 each via the twins).
    """
    p = params
    spu = p.s * p.p_u
    c_r = p.s * (1.0 - p.C)          # misses; p_m folded into logging
    if rda:
        K = p.P * p.f_u * spu / 2.0
        p_l = logging_probability(K, p.S, p.N)
        chain = geometric_chain_term(p_l, spu)
        c_l = ((3.0 + 2.0 * p_l) * spu
               + 4.0 * (spu + spu * p_l + 4.0)
               + 4.0 * chain)
        c_b = (p.P * p.f_u * (spu * p_l / 2.0 + chain + 1.0)
               + (spu / 2.0) * (6.0 * p_l + 5.0 * (1.0 - p_l))
               + 4.0)
        c_s = (p.P * p.f_u * (spu * p_l / 2.0 + chain + 1.0)
               + p.P * p.f_u * (spu / 2.0) * (6.0 * p_l + 5.0 * (1.0 - p_l))
               + p.S / p.N)          # current-parity bitmap rebuild
    else:
        p_l = 1.0
        c_l = 3.0 * spu + 4.0 * (2.0 * spu) + 4.0 * 4.0
        c_b = (p.P * p.f_u * spu / 2.0       # log pages back to BOT
               + 4.0 * (spu / 2.0)           # rewrite half-done pages
               + 4.0)
        c_s = p.P * p.f_u * (spu / 2.0 + 4.0 * (spu / 2.0) + 2.0)
    c_u = p.s * (1.0 - p.C) + c_l + p.p_b * c_b
    c_E = mean_transaction_cost(p.f_u, c_r, c_u)
    r_t = interval_throughput(p.T, c_E, c_s=c_s)
    return CostBreakdown(algorithm="page FORCE/TOC", rda=rda, c_r=c_r,
                         c_u=c_u, c_l=c_l, c_b=c_b, c_c=0.0, c_s=c_s,
                         checkpoint_interval=None, p_l=p_l, c_E=c_E,
                         throughput=r_t)


def noforce_acc(params: ModelParams, rda: bool) -> CostBreakdown:
    """Page logging, ¬FORCE + ACC (Section 5.2.2; Figure 10).

    Paper fragments implemented:

    * ``p_m = 1 - (1 - f_u p_u)^{1/(1-C)}``, ``p_s`` as Section 5.2.2;
    * ¬RDA: ``c_l = 4 (2 s p_u + 2)`` (before+after images and BOT/EOT
      into the combined log), checkpoint cost ``c_c = 4 B p_m + 4``;
    * RDA: K = P f_u s p_u p_s / 2 (only *stolen* pages consume
      groups), before-images logged only for the stolen-with-conflict
      fraction ``p_s p_l``, checkpoint cost ``(4 + 2 p_l) B p_m + 4``;
    * recovery ``c_s = (r_c / 2) f_u (c_l / 4 + 4 s p_u)
      + P f_u (c_l / 4 + 4 s p_u)`` with ``r_c = I / c_E`` transactions
      per checkpoint interval, and the optimal ``I`` from Eq. (1).
    """
    p = params
    spu = p.s * p.p_u
    p_m = replaced_page_modified(p.f_u, p.p_u, p.C)
    p_s_steal = stolen_before_eot(p.B, p.C, p.s, p.P)
    a_write = 4.0
    if rda:
        K = p.P * p.f_u * spu * p_s_steal / 2.0
        p_l = logging_probability(K, p.S, p.N)
        chain = geometric_chain_term(p_l, spu * p_s_steal)
        write_cost = 4.0 + 2.0 * p_l        # dirty groups touch both twins
        # the paper's 5.2.2 discipline logs before+after images at EOT;
        # RDA skips the before-image only for pages already stolen to a
        # clean group (fraction p_s * (1 - p_l)) — whole-page before
        # images cannot be deferred in memory the way record entries can
        saved_before = spu * p_s_steal * (1.0 - p_l)
        c_l = (4.0 * (2.0 * spu - saved_before + 2.0) + 4.0 * chain)
        c_b = (2.0 * (p.P * p.f_u * spu / 2.0)
               + (spu / 2.0) * p_s_steal * (6.0 * p_l + 5.0 * (1.0 - p_l))
               + 4.0)
        c_c = (4.0 + 2.0 * p_l) * p.B * p_m + 4.0
        c_r = p.s * (1.0 - p.C) + write_cost * p.s * (1.0 - p.C) * p_m
        c_u = (p.s * (1.0 - p.C) + write_cost * p.s * (1.0 - p.C) * p_m
               + c_l + p.p_b * c_b)
        extra_recovery = p.S / p.N          # bitmap rebuild
    else:
        p_l = 1.0
        c_l = 4.0 * (2.0 * spu + 2.0)
        c_b = (2.0 * (p.P * p.f_u * spu / 2.0)
               + 4.0 * (spu / 2.0) * p_s_steal
               + 4.0)
        c_c = 4.0 * p.B * p_m + 4.0
        c_r = p.s * (1.0 - p.C) + a_write * p.s * (1.0 - p.C) * p_m
        c_u = (p.s * (1.0 - p.C) + a_write * p.s * (1.0 - p.C) * p_m
               + c_l + p.p_b * c_b)
        extra_recovery = 0.0
    c_E = mean_transaction_cost(p.f_u, c_r, c_u)
    redo_per_txn = c_l / 4.0 + 4.0 * spu
    interval = optimal_checkpoint_interval(c_E, c_c, p.T, redo_per_txn, p.f_u)
    r_c = interval / c_E
    c_s = ((r_c / 2.0) * p.f_u * redo_per_txn
           + p.P * p.f_u * redo_per_txn
           + extra_recovery)
    r_t = interval_throughput(p.T, c_E, c_s=c_s, c_c=c_c, interval=interval)
    return CostBreakdown(algorithm="page ¬FORCE/ACC", rda=rda, c_r=c_r,
                         c_u=c_u, c_l=c_l, c_b=c_b, c_c=c_c, c_s=c_s,
                         checkpoint_interval=interval, p_l=p_l, c_E=c_E,
                         throughput=r_t)
