"""Database configurations: the paper's algorithm classes as presets.

Section 5 evaluates four algorithm classes, each with and without RDA
recovery — eight configurations:

==================  ============  =============  =====
class               logging       EOT/checkpoint  RDA
==================  ============  =============  =====
Figure 9            page          FORCE + TOC    ±
Figure 10           page          ¬FORCE + ACC   ±
Figure 11           record        FORCE + TOC    ±
Figure 12           record        ¬FORCE + ACC   ±
==================  ============  =============  =====

A :class:`DBConfig` captures one cell; :func:`preset` builds any of them
by name.  Beyond the paper's grid, four ``…-raid6`` presets rerun the
WAL classes on a double-parity array, and two REDO-only presets add a
fifth algorithm class (no undo log; write-behind propagation and
per-page redo chains): ``page-noforce-redo`` and the RDA+REDO hybrid
``record-noforce-rda-redo``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..storage.geometry import Placement


@dataclass(frozen=True)
class DBConfig:
    """One recovery configuration.

    Attributes:
        group_size: N, data pages per parity group.
        num_groups: G, number of parity groups (S = N * G data pages).
        buffer_capacity: B, buffer frames.
        record_logging: record-granularity logging (else page logging).
        force: FORCE + TOC discipline (else ¬FORCE + ACC).
        rda: use RDA recovery (twin-parity array) instead of plain WAL
            over a single-parity array.
        steal: allow uncommitted dirty pages to be written back (the
            paper's assumption; RDA exists to make this cheap).  With
            NO-STEAL no undo information is ever needed, but a buffer
            full of uncommitted pages refuses further work.
        placement: data striping (RAID-5) or parity striping.
        replacement: buffer replacement policy name.
        checkpoint_interval: cost units between automatic ACC
            checkpoints (None = manual checkpoints only); ignored under
            FORCE.
        log_page_size: bytes per log page (model constant l_p).
        log_transfers_per_page: page transfers charged per filled log
            page per mirror copy.
        backend: storage-backend registry name
            (:func:`repro.storage.backend_names`); None selects the
            legacy default implied by ``rda`` ("twin" / "single").
        batched: use the batched hot path (commit-window write-back
            runs vectorized through one parity-kernel call per window).
            Semantically identical to the per-page path — same disk
            schedule, same histories — just faster; ``False`` keeps the
            legacy loop (the determinism tests diff the two).  The
            ``REPRO_HOTPATH=legacy`` environment variable overrides
            this to False at engine construction.
        redo_only: the fifth (beyond-paper) recovery class: no undo
            log at all.  Redo records are threaded into per-page
            chains and dirty pages may only reach disk once their
            chain is durable (write-behind propagation); restart
            replays each page's chain forward from its on-disk state.
            Requires ¬FORCE.  With ``rda`` this is the RDA+REDO
            hybrid: twin-parity undo handles losers while winners pay
            only redo logging.
    """

    group_size: int = 4
    num_groups: int = 16
    buffer_capacity: int = 32
    record_logging: bool = False
    force: bool = True
    rda: bool = True
    steal: bool = True
    placement: Placement = Placement.STRIPED
    replacement: str = "lru"
    checkpoint_interval: float | None = None
    log_page_size: int = 2020
    log_transfers_per_page: int = 1
    backend: str | None = None
    batched: bool = True
    redo_only: bool = False

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ModelError("group_size (N) must be at least 2")
        if self.num_groups < 1:
            raise ModelError("num_groups (G) must be at least 1")
        if self.buffer_capacity < 2:
            raise ModelError("buffer_capacity (B) must be at least 2")
        if self.redo_only and self.force:
            raise ModelError("redo_only requires the ¬FORCE discipline "
                             "(there is no undo log to force against)")

    @property
    def num_data_pages(self) -> int:
        """S: the database size in pages."""
        return self.group_size * self.num_groups

    @property
    def resolved_backend(self) -> str:
        """The storage-backend name this configuration runs on."""
        if self.backend is not None:
            return self.backend
        return "twin" if self.rda else "single"

    @property
    def algorithm_name(self) -> str:
        """Human-readable name matching the paper's terminology."""
        logging = "record" if self.record_logging else "page"
        discipline = "FORCE/TOC" if self.force else "¬FORCE/ACC"
        recovery = "RDA" if self.rda else "¬RDA"
        name = f"{logging} logging, {discipline}, {recovery}"
        if self.redo_only:
            name += ", REDO-only"
        if self.backend is not None:
            name += f", backend={self.backend}"
        return name


_PRESETS = {
    "page-force-rda": dict(record_logging=False, force=True, rda=True),
    "page-force-log": dict(record_logging=False, force=True, rda=False),
    "page-noforce-rda": dict(record_logging=False, force=False, rda=True),
    "page-noforce-log": dict(record_logging=False, force=False, rda=False),
    "record-force-rda": dict(record_logging=True, force=True, rda=True),
    "record-force-log": dict(record_logging=True, force=True, rda=False),
    "record-noforce-rda": dict(record_logging=True, force=False, rda=True),
    "record-noforce-log": dict(record_logging=True, force=False, rda=False),
}

# beyond-paper presets: the WAL configurations over the double-parity
# RAID-6 tier (RDA needs twins, so there is no "-rda" raid6 cell), plus
# the fifth recovery class — REDO-only (no undo log, write-behind
# propagation, per-page redo chains) — pure and as the RDA hybrid
_EXTENDED_PRESETS = {
    "page-force-raid6": dict(record_logging=False, force=True, rda=False,
                             backend="raid6"),
    "page-noforce-raid6": dict(record_logging=False, force=False, rda=False,
                               backend="raid6"),
    "record-force-raid6": dict(record_logging=True, force=True, rda=False,
                               backend="raid6"),
    "record-noforce-raid6": dict(record_logging=True, force=False, rda=False,
                                 backend="raid6"),
    "page-noforce-redo": dict(record_logging=False, force=False, rda=False,
                              redo_only=True),
    "record-noforce-rda-redo": dict(record_logging=True, force=False,
                                    rda=True, redo_only=True),
}


def preset(name: str, **overrides) -> DBConfig:
    """Build a configuration by name: one of the eight paper cells
    (``{page|record}-{force|noforce}-{rda|log}``) or an extended
    ``…-raid6`` cell; keyword overrides adjust sizes etc.
    """
    base = _PRESETS.get(name)
    if base is None:
        base = _EXTENDED_PRESETS.get(name)
    if base is None:
        raise ModelError(
            f"unknown preset {name!r}; choose from "
            f"{extended_preset_names()}") from None
    merged = dict(base)
    merged.update(overrides)
    return DBConfig(**merged)


def all_preset_names() -> list:
    """The eight paper configuration names, sorted."""
    return sorted(_PRESETS)


def extended_preset_names() -> list:
    """All preset names — the paper's eight plus the raid6 cells."""
    return sorted({**_PRESETS, **_EXTENDED_PRESETS})
