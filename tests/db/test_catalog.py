"""Tests for the persistent catalog."""

import pytest

from repro.db import Database, preset
from repro.db.catalog import Catalog, CatalogError


def fresh():
    db = Database(preset("record-noforce-rda", group_size=5, num_groups=16,
                         buffer_capacity=20, checkpoint_interval=None))
    txn = db.begin()
    catalog = Catalog.create(db, txn)
    db.commit(txn)
    return db, catalog


class TestLifecycle:
    def test_create_and_open_heap(self):
        db, catalog = fresh()
        txn = db.begin()
        heap = catalog.create_heap(txn, "orders", pages=4)
        rid = heap.insert(txn, b"order-1")
        db.commit(txn)
        txn = db.begin()
        again = catalog.open(txn, "orders")
        assert again.read(txn, rid) == b"order-1"
        db.commit(txn)

    def test_create_and_open_btree(self):
        db, catalog = fresh()
        txn = db.begin()
        tree = catalog.create_btree(txn, "idx", pages=8)
        tree.put(txn, b"k", b"v")
        db.commit(txn)
        txn = db.begin()
        assert catalog.open(txn, "idx").get(txn, b"k") == b"v"
        db.commit(txn)

    def test_list_objects(self):
        db, catalog = fresh()
        txn = db.begin()
        catalog.create_heap(txn, "h", pages=2)
        catalog.create_btree(txn, "t", pages=4)
        assert catalog.list_objects(txn) == {"h": "heap", "t": "btree"}
        db.commit(txn)

    def test_duplicate_name_rejected(self):
        db, catalog = fresh()
        txn = db.begin()
        catalog.create_heap(txn, "x", pages=2)
        with pytest.raises(CatalogError):
            catalog.create_heap(txn, "x", pages=2)
        db.abort(txn)

    def test_open_unknown(self):
        db, catalog = fresh()
        txn = db.begin()
        with pytest.raises(CatalogError):
            catalog.open(txn, "ghost")
        db.commit(txn)

    def test_page_mode_rejected(self):
        db = Database(preset("page-force-rda"))
        with pytest.raises(CatalogError):
            Catalog(db)

    def test_out_of_pages(self):
        db, catalog = fresh()
        txn = db.begin()
        with pytest.raises(CatalogError):
            catalog.create_heap(txn, "big", pages=10_000)
        db.abort(txn)

    def test_allocations_do_not_overlap(self):
        db, catalog = fresh()
        txn = db.begin()
        a = catalog.create_heap(txn, "a", pages=3)
        b = catalog.create_heap(txn, "b", pages=3)
        assert set(a.pages).isdisjoint(b.pages)
        assert catalog.catalog_page not in a.pages + b.pages
        db.commit(txn)


class TestDropAndReuse:
    def test_drop_frees_pages_for_reuse(self):
        db, catalog = fresh()
        txn = db.begin()
        heap = catalog.create_heap(txn, "tmp", pages=3)
        heap.insert(txn, b"junk")
        old_pages = list(heap.pages)
        catalog.drop(txn, "tmp")
        tree = catalog.create_btree(txn, "idx", pages=3)
        assert set(tree.pages) == set(old_pages)    # reused
        tree.put(txn, b"k", b"v")
        assert tree.get(txn, b"k") == b"v"
        db.commit(txn)

    def test_drop_unknown(self):
        db, catalog = fresh()
        txn = db.begin()
        with pytest.raises(CatalogError):
            catalog.drop(txn, "nope")
        db.abort(txn)


class TestRecovery:
    def test_aborted_create_leaves_no_object(self):
        db, catalog = fresh()
        txn = db.begin()
        catalog.create_heap(txn, "ghost", pages=2)
        db.abort(txn)
        txn = db.begin()
        assert catalog.list_objects(txn) == {}
        db.commit(txn)

    def test_crash_mid_create_rolls_back(self):
        db, catalog = fresh()
        txn = db.begin()
        tree = catalog.create_btree(txn, "doomed", pages=6)
        tree.put(txn, b"k", b"v")
        db.crash()
        db.recover()
        txn = db.begin()
        assert catalog.list_objects(txn) == {}
        # and the pages are reusable afterwards
        heap = catalog.create_heap(txn, "fresh", pages=6)
        heap.insert(txn, b"fine")
        db.commit(txn)

    def test_committed_objects_survive_crash(self):
        db, catalog = fresh()
        txn = db.begin()
        heap = catalog.create_heap(txn, "keep", pages=3)
        rid = heap.insert(txn, b"payload")
        db.commit(txn)
        db.crash()
        db.recover()
        txn = db.begin()
        assert catalog.list_objects(txn) == {"keep": "heap"}
        assert catalog.open(txn, "keep").read(txn, rid) == b"payload"
        db.commit(txn)
