"""Typed operation histories and their recorder.

A *history* is the sequence of logical operations the database
performed: begin/read/write/steal/commit/abort/flip plus the
crash/restart/checkpoint markers.  Serializability theory is defined
over exactly this object, so the recorder keeps it faithful: events
are appended in execution order with a global sequence number and are
immutable once recorded.

Histories are JSON-serializable (one flat dict per event) and can be
reconstructed from a tracer event stream: every recorded operation is
mirrored as a ``history.<op>`` trace event, so a JSONL trace doubles
as the history transport (:func:`history_from_trace`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

#: Operations a history may contain.
OPS = ("begin", "read", "write", "steal", "commit", "abort", "flip",
       "crash", "restart", "checkpoint")

_FIELDS = ("seq", "op", "txn", "page", "slot", "group")


@dataclass(frozen=True)
class HistoryEvent:
    """One logical operation.

    ``txn``/``page``/``slot``/``group`` are ``None`` when the
    operation does not involve them (e.g. ``crash`` has no txn; a
    page-mode ``read`` has no slot).  ``extra`` carries auxiliary
    attributes (e.g. ``logged`` on a steal) as a sorted tuple of
    pairs so events stay hashable and order-insensitive to kwargs.
    """

    seq: int
    op: str
    txn: Optional[int] = None
    page: Optional[int] = None
    slot: Optional[int] = None
    group: Optional[int] = None
    extra: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        """Flat JSON-ready dict; ``None`` fields are omitted."""
        out = {"seq": self.seq, "op": self.op}
        for name in ("txn", "page", "slot", "group"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        out.update(self.extra)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HistoryEvent":
        extra = tuple(sorted((k, v) for k, v in data.items()
                             if k not in _FIELDS))
        return cls(seq=data["seq"], op=data["op"], txn=data.get("txn"),
                   page=data.get("page"), slot=data.get("slot"),
                   group=data.get("group"), extra=extra)

    def get(self, key: str, default=None):
        """Look up an ``extra`` attribute."""
        for name, value in self.extra:
            if name == key:
                return value
        return default


class History:
    """An ordered, immutable-by-convention sequence of events."""

    def __init__(self, events: Iterable[HistoryEvent] = ()):
        self.events = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, History) and self.events == other.events

    def __repr__(self) -> str:
        return f"History({len(self.events)} events)"

    # -- queries -------------------------------------------------------------

    def of_op(self, op: str) -> list:
        return [e for e in self.events if e.op == op]

    def committed_txns(self) -> set:
        return {e.txn for e in self.events if e.op == "commit"}

    def aborted_txns(self) -> set:
        return {e.txn for e in self.events if e.op == "abort"}

    def txns(self) -> set:
        return {e.txn for e in self.events if e.txn is not None}

    # -- serialization -------------------------------------------------------

    def to_dicts(self) -> list:
        return [event.to_dict() for event in self.events]

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dicts(), sort_keys=True, **kwargs)

    @classmethod
    def from_dicts(cls, rows: Iterable[dict]) -> "History":
        return cls(HistoryEvent.from_dict(row) for row in rows)

    @classmethod
    def from_json(cls, text: str) -> "History":
        return cls.from_dicts(json.loads(text))


@dataclass
class HistoryRecorder:
    """Appends events in execution order, assigning sequence numbers."""

    history: History = field(default_factory=History)
    _next_seq: int = 0

    def record(self, op: str, txn=None, page=None, slot=None, group=None,
               **extra) -> HistoryEvent:
        if op not in OPS:
            raise ValueError(f"unknown history op {op!r}")
        event = HistoryEvent(seq=self._next_seq, op=op, txn=txn, page=page,
                             slot=slot, group=group,
                             extra=tuple(sorted(extra.items())))
        self._next_seq += 1
        self.history.events.append(event)
        return event


def history_from_trace(events) -> History:
    """Rebuild a :class:`History` from tracer events.

    ``events`` is an iterable of trace-event dicts (e.g. parsed JSONL
    lines or :class:`~repro.obs.tracer.RingBufferSink` contents); only
    ``history.*`` events contribute.  The result equals the history the
    recorder captured in the same run.
    """
    rows = []
    for event in events:
        name = event.get("name", "")
        if not name.startswith("history."):
            continue
        row = dict(event.get("attrs", {}))
        row["op"] = name[len("history."):]
        rows.append(row)
    rows.sort(key=lambda row: row["seq"])
    return History.from_dicts(rows)


def history_from_trace_file(path) -> History:
    """Rebuild a history from a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle if line.strip()]
    return history_from_trace(events)
