"""Figure 10: page logging, ¬ATOMIC/STEAL/¬FORCE/ACC — throughput vs C.

Regenerates the ACC-discipline panel and checks the paper's page-logging
headline crossover: ¬FORCE/ACC beats FORCE/TOC without RDA, but
FORCE/TOC *with* RDA beats ¬FORCE/ACC with or without it.
"""

import pytest

from repro.model import figure10
from repro.model.page_logging import force_toc, noforce_acc
from repro.model.params import high_update

from .conftest import write_table


def test_figure10_regeneration(benchmark, results_dir):
    figure = benchmark(figure10)
    write_table(results_dir, "figure10", figure.format_table())

    base = figure.curves["high-update ¬RDA"]
    rda = figure.curves["high-update RDA"]
    # RDA helps only mildly under ¬FORCE page logging (before-images are
    # logged at EOT regardless); curves stay close
    assert all(r >= b * 0.99 for r, b in zip(rda, base))
    at_09 = figure.x_values.index(0.9)
    assert rda[at_09] / base[at_09] - 1.0 < 0.10

    # figure's high-update axis range ≈ 47 800 .. 75 700
    assert base[0] == pytest.approx(47800, rel=0.10)

    benchmark.extra_info["high_update_gain_at_C0.9"] = round(
        rda[at_09] / base[at_09] - 1.0, 4)


def test_figure10_crossover(benchmark):
    """The paper's claim set at C = 0.9, high update."""

    def evaluate():
        p = high_update(C=0.9)
        return {
            "force": force_toc(p, rda=False).throughput,
            "force_rda": force_toc(p, rda=True).throughput,
            "noforce": noforce_acc(p, rda=False).throughput,
            "noforce_rda": noforce_acc(p, rda=True).throughput,
        }

    r = benchmark(evaluate)
    assert r["noforce"] > r["force"]                   # ACC wins without RDA
    assert r["force_rda"] > r["noforce"]               # ...RDA reverses it
    assert r["force_rda"] > r["noforce_rda"]           # FORCE+RDA is best
    benchmark.extra_info.update({k: round(v) for k, v in r.items()})
