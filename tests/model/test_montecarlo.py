"""Tests for the Monte Carlo reliability validator."""

import pytest

from repro.errors import ModelError
from repro.model.montecarlo import simulate_mttdl
from repro.model.reliability import raid5_group_mttdl, raid6_group_mttdl


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ModelError):
            simulate_mttdl(30_000, 11, 24, samples=0)
        with pytest.raises(ModelError):
            simulate_mttdl(30_000, 11, 24, tolerated=0)
        with pytest.raises(ModelError):
            simulate_mttdl(30_000, 2, 24, tolerated=2)
        with pytest.raises(ModelError):
            simulate_mttdl(-1, 11, 24)

    def test_deterministic_given_seed(self):
        a = simulate_mttdl(30_000, 11, 24, samples=20, seed=5)
        b = simulate_mttdl(30_000, 11, 24, samples=20, seed=5)
        assert a == b


class TestAgreementWithClosedForms:
    def test_single_parity_matches_formula(self):
        """Simulation within ~25% of MTTF²/(G(G-1)MTTR) at these scales."""
        analytic = raid5_group_mttdl(10_000, 6, 100)
        simulated = simulate_mttdl(10_000, 6, 100, tolerated=1,
                                   samples=400, seed=1)
        assert simulated == pytest.approx(analytic, rel=0.25)

    def test_double_parity_far_above_single(self):
        single = simulate_mttdl(5_000, 6, 200, tolerated=1, samples=150,
                                seed=2)
        double = simulate_mttdl(5_000, 6, 200, tolerated=2, samples=150,
                                seed=2)
        assert double > 3 * single

    def test_double_parity_order_of_magnitude(self):
        """Loose agreement with MTTF³/(G(G-1)(G-2)MTTR²) — these tails
        are heavy, so only the order of magnitude is asserted."""
        analytic = raid6_group_mttdl(3_000, 5, 300)
        simulated = simulate_mttdl(3_000, 5, 300, tolerated=2,
                                   samples=200, seed=3)
        assert analytic / 4 < simulated < analytic * 4

    def test_shorter_repairs_help(self):
        slow = simulate_mttdl(10_000, 6, 500, samples=200, seed=4)
        fast = simulate_mttdl(10_000, 6, 50, samples=200, seed=4)
        assert fast > slow
