"""Metrics: counters, gauges and histograms with labeled children.

A :class:`MetricsRegistry` is the numeric half of the observability
layer: where the tracer records *what happened*, the registry records
*how often and how much*.  All instruments are plain-Python and cheap —
a counter increment is one dict-free integer add — so they stay enabled
even when tracing is off.

Labeled children follow the Prometheus idiom::

    wal = registry.counter("wal.records")
    wal.labels(type="CommitRecord").inc()

``snapshot()`` renders everything as a JSON-friendly dict, with child
series keyed ``name{k=v,...}`` (label keys sorted).
"""

from __future__ import annotations

import re


def _series_key(name: str, labels: dict) -> str:
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text-format spec:
    backslash, double-quote and line feed become ``\\\\``, ``\\"`` and
    ``\\n`` (in that order, so already-escaped backslashes survive)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """A registry name as a valid Prometheus metric name (dots and any
    other invalid characters become underscores)."""
    sanitized = _NAME_SANITIZE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _label_block(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(labels[key])}"'
                     for key in sorted(labels))
    return f"{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, transfers, records)."""

    __slots__ = ("name", "value", "labels_dict", "_children")

    def __init__(self, name: str, labels_dict=None) -> None:
        self.name = name
        self.value = 0
        self.labels_dict = labels_dict
        self._children: dict = {}

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def labels(self, **labels) -> "Counter":
        """The child counter for one label combination (created lazily)."""
        key = _series_key(self.name, labels)
        child = self._children.get(key)
        if child is None:
            child = Counter(key, labels_dict=dict(labels))
            self._children[key] = child
        return child

    def collect(self, out: dict) -> None:
        out[self.name] = self.value
        for child in self._children.values():
            child.collect(out)


class Gauge:
    """A value that goes up and down (dirty groups, live transactions)."""

    __slots__ = ("name", "value", "labels_dict", "_children")

    def __init__(self, name: str, labels_dict=None) -> None:
        self.name = name
        self.value = 0
        self.labels_dict = labels_dict
        self._children: dict = {}

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def labels(self, **labels) -> "Gauge":
        key = _series_key(self.name, labels)
        child = self._children.get(key)
        if child is None:
            child = Gauge(key, labels_dict=dict(labels))
            self._children[key] = child
        return child

    def collect(self, out: dict) -> None:
        out[self.name] = self.value
        for child in self._children.values():
            child.collect(out)


DEFAULT_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 12, 16, 32, 64, 128)
"""Histogram bucket upper bounds, tuned for per-operation transfer
counts (the interesting values are small integers: 3, 4, 5...)."""


class Histogram:
    """Distribution of an observed value (per-operation transfers,
    span durations)."""

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max", "labels_dict", "_children")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS,
                 labels_dict=None) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +inf
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.labels_dict = labels_dict
        self._children: dict = {}

    def observe(self, value) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def labels(self, **labels) -> "Histogram":
        key = _series_key(self.name, labels)
        child = self._children.get(key)
        if child is None:
            child = Histogram(key, self.buckets, labels_dict=dict(labels))
            self._children[key] = child
        return child

    def collect(self, out: dict) -> None:
        doc = {
            "count": self.count,
            "sum": self.total,
            "mean": round(self.mean, 4),
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{f"le_{bound}": count
                   for bound, count in zip(self.buckets, self.bucket_counts)},
                "le_inf": self.bucket_counts[-1],
            },
        }
        out[self.name] = doc
        for child in self._children.values():
            child.collect(out)


class MetricsRegistry:
    """Names a family of instruments; the single export point.

    The same name always returns the same instrument (get-or-create),
    so call sites need no coordination — ``registry.counter("x")`` in
    two modules shares one counter.
    """

    def __init__(self) -> None:
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get or create the histogram ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(name, buckets)
            self._histograms[name] = instrument
        return instrument

    def snapshot(self) -> dict:
        """Everything, as a JSON-friendly dict::

            {"counters": {name: value, ...},
             "gauges": {name: value, ...},
             "histograms": {name: {count, sum, mean, min, max, buckets}}}
        """
        counters: dict = {}
        for instrument in self._counters.values():
            instrument.collect(counters)
        gauges: dict = {}
        for instrument in self._gauges.values():
            instrument.collect(gauges)
        histograms: dict = {}
        for instrument in self._histograms.values():
            instrument.collect(histograms)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def to_prometheus(self) -> str:
        """Render everything in the Prometheus text exposition format.

        Metric names are sanitized (``wal.records`` →
        ``wal_records``); label values are escaped per the spec
        (:func:`escape_label_value`), so values containing backslashes,
        quotes or newlines round-trip through a text-format parser.
        Histograms expose cumulative ``_bucket`` series plus ``_sum``
        and ``_count``.
        """
        lines: list = []

        def walk(instrument, inherited: dict):
            labels = dict(inherited)
            if instrument.labels_dict:
                labels.update(instrument.labels_dict)
            yield instrument, labels
            for child in instrument._children.values():
                yield from walk(child, labels)

        for kind, instruments in (("counter", self._counters),
                                  ("gauge", self._gauges)):
            for root in instruments.values():
                name = prometheus_name(root.name)
                lines.append(f"# TYPE {name} {kind}")
                for instrument, labels in walk(root, {}):
                    lines.append(
                        f"{name}{_label_block(labels)} {instrument.value}")
        for root in self._histograms.values():
            name = prometheus_name(root.name)
            lines.append(f"# TYPE {name} histogram")
            for instrument, labels in walk(root, {}):
                cumulative = 0
                for bound, count in zip(instrument.buckets,
                                        instrument.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_block({**labels, 'le': bound})} "
                        f"{cumulative}")
                lines.append(
                    f"{name}_bucket{_label_block({**labels, 'le': '+Inf'})} "
                    f"{instrument.count}")
                lines.append(
                    f"{name}_sum{_label_block(labels)} {instrument.total}")
                lines.append(
                    f"{name}_count{_label_block(labels)} {instrument.count}")
        return "\n".join(lines) + "\n" if lines else ""
